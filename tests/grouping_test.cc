// Byte-exact reproduction of Table 2: hierarchical communication patterns
// for the system [(rack,1),(server,2),(cpu,2),(gpu,4)] where device ids map
// A0..A3 = 0..3, B0..B3 = 4..7, C0..C3 = 8..11, D0..D3 = 12..15.
#include "core/grouping.h"

#include <gtest/gtest.h>

namespace p2::core {
namespace {

using Groups = std::vector<std::vector<std::int64_t>>;

const std::vector<std::int64_t> kHierarchy = {1, 2, 2, 4};
constexpr int kRack = 0;
constexpr int kServer = 1;
constexpr int kCpu = 2;

TEST(Table2, CpuInsideGroup) {
  const auto g = DeriveGroups(kHierarchy, kCpu, Form::InsideGroup());
  const Groups want = {{0, 1, 2, 3}, {4, 5, 6, 7}, {8, 9, 10, 11},
                       {12, 13, 14, 15}};
  EXPECT_EQ(g, want);
}

TEST(Table2, CpuParallelServer) {
  const auto g = DeriveGroups(kHierarchy, kCpu, Form::Parallel(kServer));
  const Groups want = {{0, 4}, {1, 5}, {2, 6},   {3, 7},
                       {8, 12}, {9, 13}, {10, 14}, {11, 15}};
  EXPECT_EQ(g, want);
}

TEST(Table2, CpuParallelRack) {
  const auto g = DeriveGroups(kHierarchy, kCpu, Form::Parallel(kRack));
  const Groups want = {{0, 4, 8, 12}, {1, 5, 9, 13}, {2, 6, 10, 14},
                       {3, 7, 11, 15}};
  EXPECT_EQ(g, want);
}

TEST(Table2, CpuMasterRack) {
  const auto g = DeriveGroups(kHierarchy, kCpu, Form::Master(kRack));
  const Groups want = {{0, 4, 8, 12}};
  EXPECT_EQ(g, want);
}

TEST(Table2, ServerInsideGroup) {
  const auto g = DeriveGroups(kHierarchy, kServer, Form::InsideGroup());
  const Groups want = {{0, 1, 2, 3, 4, 5, 6, 7}, {8, 9, 10, 11, 12, 13, 14, 15}};
  EXPECT_EQ(g, want);
}

TEST(Table2, ServerParallelRack) {
  const auto g = DeriveGroups(kHierarchy, kServer, Form::Parallel(kRack));
  const Groups want = {{0, 8}, {1, 9}, {2, 10}, {3, 11},
                       {4, 12}, {5, 13}, {6, 14}, {7, 15}};
  EXPECT_EQ(g, want);
}

TEST(Table2, RackInsideGroup) {
  const auto g = DeriveGroups(kHierarchy, kRack, Form::InsideGroup());
  ASSERT_EQ(g.size(), 1u);
  EXPECT_EQ(g[0].size(), 16u);
  for (std::int64_t d = 0; d < 16; ++d) EXPECT_EQ(g[0][d], d);
}

TEST(DeriveGroups, MasterServer) {
  // Master(server) from slice cpu: one group per server.
  const auto g = DeriveGroups(kHierarchy, kCpu, Form::Master(kServer));
  const Groups want = {{0, 4}, {8, 12}};
  EXPECT_EQ(g, want);
}

TEST(DeriveGroups, InnermostSliceSingletons) {
  // Slice at the GPU level: subtree size 1, singleton groups (not filtered).
  const auto g = DeriveGroups(kHierarchy, 3, Form::InsideGroup());
  ASSERT_EQ(g.size(), 16u);
  EXPECT_EQ(g[0], (std::vector<std::int64_t>{0}));
}

TEST(DeriveGroups, GpuParallelCpu) {
  // Slice gpu, Parallel(cpu): all 4 GPUs under each CPU.
  const auto g = DeriveGroups(kHierarchy, 3, Form::Parallel(kCpu));
  ASSERT_EQ(g.size(), 4u);
  EXPECT_EQ(g[0], (std::vector<std::int64_t>{0, 1, 2, 3}));
}

TEST(DeriveGroups, CardinalityOneLevelsAreTransparent) {
  // Hierarchy with interleaved 1s behaves like the squeezed hierarchy.
  const std::vector<std::int64_t> padded = {1, 1, 2, 1, 2};
  const auto g = DeriveGroups(padded, 2, Form::InsideGroup());
  const Groups want = {{0, 1}, {2, 3}};
  EXPECT_EQ(g, want);
}

TEST(DeriveGroups, Errors) {
  EXPECT_THROW(DeriveGroups(kHierarchy, 4, Form::InsideGroup()),
               std::invalid_argument);
  EXPECT_THROW(DeriveGroups(kHierarchy, -1, Form::InsideGroup()),
               std::invalid_argument);
  // Ancestor must be a strict ancestor of the slice.
  EXPECT_THROW(DeriveGroups(kHierarchy, 1, Form::Parallel(1)),
               std::invalid_argument);
  EXPECT_THROW(DeriveGroups(kHierarchy, 1, Form::Parallel(2)),
               std::invalid_argument);
  const std::vector<std::int64_t> bad = {2, 0};
  EXPECT_THROW(DeriveGroups(bad, 0, Form::InsideGroup()),
               std::invalid_argument);
}

TEST(DeriveGroups, GroupsPartitionParticipants) {
  // Parallel groups are pairwise disjoint and cover each ancestor subtree.
  for (int slice = 1; slice < 4; ++slice) {
    for (int anc = 0; anc < slice; ++anc) {
      const auto gs = DeriveGroups(kHierarchy, slice, Form::Parallel(anc));
      std::vector<int> seen(16, 0);
      for (const auto& g : gs) {
        for (std::int64_t d : g) seen[static_cast<std::size_t>(d)]++;
      }
      for (int d = 0; d < 16; ++d) {
        EXPECT_EQ(seen[static_cast<std::size_t>(d)], 1)
            << "slice=" << slice << " anc=" << anc << " d=" << d;
      }
    }
  }
}

}  // namespace
}  // namespace p2::core
