#include "core/lowering.h"

#include <gtest/gtest.h>

#include <set>

#include "core/synthesizer.h"

namespace p2::core {
namespace {

// Running example, Fig 2d placement, reduction along parameter sharding.
SynthesisHierarchy Fig2dHierarchy() {
  const ParallelismMatrix m({{1, 1, 2, 2}, {1, 2, 1, 2}});
  const std::vector<int> axes = {1};
  return SynthesisHierarchy::Build(m, axes,
                                   SynthesisHierarchyKind::kReductionAxes);
}

// Fig 3b: AllReduce over local pairs, then AllReduce across servers.
// Synthesis hierarchy levels are [1(root) 1 2 1 2]; local pairs come from
// slice level 2's subtree, remote pairs from Parallel(root).
Program Fig3bProgram() {
  return {Instruction{2, Form::InsideGroup(), Collective::kAllReduce},
          Instruction{2, Form::Parallel(0), Collective::kAllReduce}};
}

// Fig 3c / Fig 10i: Reduce to local roots, AllReduce between roots,
// Broadcast back.
Program Fig3cProgram() {
  return {Instruction{2, Form::InsideGroup(), Collective::kReduce},
          Instruction{2, Form::Master(0), Collective::kAllReduce},
          Instruction{2, Form::InsideGroup(), Collective::kBroadcast}};
}

// Fig 10ii (BlueConnect): ReduceScatter locally, AllReduce across, AllGather.
Program BlueConnectProgram() {
  return {Instruction{2, Form::InsideGroup(), Collective::kReduceScatter},
          Instruction{2, Form::Parallel(0), Collective::kAllReduce},
          Instruction{2, Form::InsideGroup(), Collective::kAllGather}};
}

TEST(LowerProgram, Fig3bGroupsMatchPaper) {
  const auto sh = Fig2dHierarchy();
  const auto lowered = LowerProgram(sh, Fig3bProgram());
  ASSERT_EQ(lowered.steps.size(), 2u);
  // Step 1: AllReduce over local GPU pairs — 8 groups of 2 covering all 16.
  EXPECT_EQ(lowered.steps[0].op, Collective::kAllReduce);
  EXPECT_EQ(lowered.steps[0].groups.size(), 8u);
  std::set<std::vector<std::int64_t>> step0(lowered.steps[0].groups.begin(),
                                            lowered.steps[0].groups.end());
  // A0,A1 = devices 0,1 reduce together (Fig 3b).
  EXPECT_TRUE(step0.count({0, 1}));
  EXPECT_TRUE(step0.count({2, 3}));
  EXPECT_TRUE(step0.count({4, 5}));
  // Step 2: AllReduce across servers: {A0, C0} = {0, 8} etc.
  EXPECT_EQ(lowered.steps[1].groups.size(), 8u);
  std::set<std::vector<std::int64_t>> step1(lowered.steps[1].groups.begin(),
                                            lowered.steps[1].groups.end());
  EXPECT_TRUE(step1.count({0, 8}));
  EXPECT_TRUE(step1.count({1, 9}));
}

TEST(LowerProgram, FractionsTrackDataVolume) {
  const auto sh = Fig2dHierarchy();
  const auto lowered = LowerProgram(sh, BlueConnectProgram());
  ASSERT_EQ(lowered.steps.size(), 3u);
  // RS starts with the full payload and halves it.
  EXPECT_DOUBLE_EQ(lowered.steps[0].in_fraction, 1.0);
  EXPECT_DOUBLE_EQ(lowered.steps[0].out_fraction, 0.5);
  // Cross AllReduce moves the scattered half.
  EXPECT_DOUBLE_EQ(lowered.steps[1].in_fraction, 0.5);
  EXPECT_DOUBLE_EQ(lowered.steps[1].out_fraction, 0.5);
  // AllGather restores the full payload.
  EXPECT_DOUBLE_EQ(lowered.steps[2].in_fraction, 0.5);
  EXPECT_DOUBLE_EQ(lowered.steps[2].out_fraction, 1.0);
}

TEST(LowerProgram, RejectsInvalidProgram) {
  const auto sh = Fig2dHierarchy();
  // Fig 4a: ReduceScatter then AllReduce over the same local groups.
  const Program bad = {
      Instruction{2, Form::InsideGroup(), Collective::kReduceScatter},
      Instruction{2, Form::InsideGroup(), Collective::kAllReduce}};
  EXPECT_THROW(LowerProgram(sh, bad), std::invalid_argument);
}

TEST(CheckLowered, CanonicalProgramsValidOnFullSystem) {
  const auto sh = Fig2dHierarchy();
  for (const Program& p :
       {Fig3bProgram(), Fig3cProgram(), BlueConnectProgram()}) {
    const auto lowered = LowerProgram(sh, p);
    std::string err;
    EXPECT_TRUE(CheckLoweredOnFullSystem(sh, lowered, &err))
        << ToString(p) << ": " << err;
  }
}

TEST(CheckLowered, SingleAllReduceValid) {
  const auto sh = Fig2dHierarchy();
  const Program p = {Instruction{0, Form::InsideGroup(), Collective::kAllReduce}};
  const auto lowered = LowerProgram(sh, p);
  ASSERT_EQ(lowered.steps.size(), 1u);
  // 4 groups of 4 (one per data-parallel replica).
  EXPECT_EQ(lowered.steps[0].groups.size(), 4u);
  EXPECT_EQ(lowered.steps[0].groups[0].size(), 4u);
  std::string err;
  EXPECT_TRUE(CheckLoweredOnFullSystem(sh, lowered, &err)) << err;
}

TEST(CheckLowered, DetectsWrongGroups) {
  const auto sh = Fig2dHierarchy();
  auto lowered = LowerProgram(sh, Fig3bProgram());
  // Corrupt a group: make two devices of different reduction groups reduce.
  lowered.steps[1].groups[0] = {0, 9};
  std::string err;
  EXPECT_FALSE(CheckLoweredOnFullSystem(sh, lowered, &err));
}

TEST(CheckLowered, IncompleteProgramFailsGoal) {
  const auto sh = Fig2dHierarchy();
  const Program p = {Instruction{2, Form::InsideGroup(), Collective::kAllReduce}};
  const auto lowered = LowerProgram(sh, p);
  std::string err;
  EXPECT_FALSE(CheckLoweredOnFullSystem(sh, lowered, &err));
  EXPECT_EQ(err, "final context differs from goal");
}

TEST(LowerProgram, MultiAxisReduction) {
  // Three axes, reduce over axes 0 and 2 (paper's three-axis experiments).
  const ParallelismMatrix m({{2, 1}, {1, 2}, {1, 4}});
  const std::vector<int> axes = {0, 2};
  const auto sh =
      SynthesisHierarchy::Build(m, axes, SynthesisHierarchyKind::kReductionAxes);
  EXPECT_EQ(sh.num_synth_devices(), 8);
  EXPECT_EQ(sh.num_replicas(), 2);
  const Program p = {Instruction{0, Form::InsideGroup(), Collective::kAllReduce}};
  const auto lowered = LowerProgram(sh, p);
  std::string err;
  EXPECT_TRUE(CheckLoweredOnFullSystem(sh, lowered, &err)) << err;
}

}  // namespace
}  // namespace p2::core
