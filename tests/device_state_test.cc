#include "core/device_state.h"

#include <gtest/gtest.h>

namespace p2::core {
namespace {

TEST(DeviceState, InitialHoldsOwnColumn) {
  const auto s = DeviceState::Initial(4, 2);
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      EXPECT_EQ(s.Get(r, c), c == 2) << r << "," << c;
    }
  }
  EXPECT_EQ(s.NumNonEmptyRows(), 4);
}

TEST(DeviceState, SetAndGet) {
  DeviceState s(3);
  EXPECT_FALSE(s.Get(1, 2));
  s.Set(1, 2, true);
  EXPECT_TRUE(s.Get(1, 2));
  s.Set(1, 2, false);
  EXPECT_FALSE(s.Get(1, 2));
}

TEST(DeviceState, LargeK) {
  // k > 64 exercises multi-word rows.
  const int k = 130;
  DeviceState s(k);
  s.Set(0, 0, true);
  s.Set(0, 64, true);
  s.Set(0, 129, true);
  s.Set(129, 65, true);
  EXPECT_TRUE(s.Get(0, 64));
  EXPECT_TRUE(s.Get(0, 129));
  EXPECT_TRUE(s.Get(129, 65));
  EXPECT_FALSE(s.Get(1, 0));
  EXPECT_EQ(s.NumNonEmptyRows(), 2);
}

TEST(DeviceState, NonEmptyRows) {
  DeviceState s(4);
  s.Set(1, 0, true);
  s.Set(3, 2, true);
  EXPECT_EQ(s.NonEmptyRows(), (std::vector<int>{1, 3}));
  EXPECT_FALSE(s.IsEmpty());
  s.Clear();
  EXPECT_TRUE(s.IsEmpty());
}

TEST(DeviceState, SameNonEmptyRows) {
  DeviceState a(4), b(4);
  a.Set(0, 1, true);
  b.Set(0, 2, true);
  EXPECT_TRUE(a.SameNonEmptyRows(b));
  b.Set(2, 0, true);
  EXPECT_FALSE(a.SameNonEmptyRows(b));
}

TEST(DeviceState, NonEmptyRowSetsDisjoint) {
  DeviceState a(4), b(4);
  a.Set(0, 1, true);
  b.Set(1, 1, true);
  EXPECT_TRUE(a.NonEmptyRowSetsDisjoint(b));
  b.Set(0, 3, true);
  EXPECT_FALSE(a.NonEmptyRowSetsDisjoint(b));
}

TEST(DeviceState, ChunksDisjoint) {
  DeviceState a(4), b(4);
  a.Set(0, 0, true);
  b.Set(0, 1, true);
  EXPECT_TRUE(a.ChunksDisjoint(b));
  b.Set(0, 0, true);
  EXPECT_FALSE(a.ChunksDisjoint(b));
}

TEST(DeviceState, SubsetComparisons) {
  DeviceState a(3), b(3);
  a.Set(0, 0, true);
  b.Set(0, 0, true);
  b.Set(1, 1, true);
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_TRUE(a.IsStrictSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_FALSE(a.IsStrictSubsetOf(a));
  EXPECT_TRUE(a.IsSubsetOf(a));
}

TEST(DeviceState, Union) {
  DeviceState a(3), b(3);
  a.Set(0, 0, true);
  b.Set(2, 1, true);
  const auto u = a.Union(b);
  EXPECT_TRUE(u.Get(0, 0));
  EXPECT_TRUE(u.Get(2, 1));
  EXPECT_EQ(u.NumNonEmptyRows(), 2);
}

TEST(DeviceState, RestrictedToRows) {
  DeviceState s(4);
  s.Set(0, 1, true);
  s.Set(1, 2, true);
  s.Set(3, 3, true);
  const std::vector<int> keep = {1, 3};
  const auto r = s.RestrictedToRows(keep);
  EXPECT_FALSE(r.Get(0, 1));
  EXPECT_TRUE(r.Get(1, 2));
  EXPECT_TRUE(r.Get(3, 3));
}

TEST(DeviceState, HashAndEquality) {
  const auto a = DeviceState::Initial(5, 1);
  const auto b = DeviceState::Initial(5, 1);
  const auto c = DeviceState::Initial(5, 2);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_NE(a, c);
}

TEST(DeviceState, ToString) {
  DeviceState s(2);
  s.Set(0, 1, true);
  EXPECT_EQ(s.ToString(), "01\n00");
}

TEST(DeviceState, Errors) {
  EXPECT_THROW(DeviceState(0), std::invalid_argument);
  DeviceState s(2);
  EXPECT_THROW(s.Get(2, 0), std::out_of_range);
  EXPECT_THROW(s.Set(0, 2, true), std::out_of_range);
  EXPECT_THROW(DeviceState::Initial(2, 2), std::out_of_range);
}

TEST(StateContext, InitialContext) {
  const auto ctx = MakeInitialContext(3);
  ASSERT_EQ(ctx.size(), 3u);
  for (int d = 0; d < 3; ++d) {
    EXPECT_EQ(ctx[static_cast<std::size_t>(d)], DeviceState::Initial(3, d));
  }
}

TEST(StateContext, GoalContext) {
  const std::vector<std::vector<std::int64_t>> groups = {{0, 1}, {2, 3}};
  const auto ctx = MakeGoalContext(4, groups);
  // Device 0's goal: columns {0,1} set in every row.
  for (int r = 0; r < 4; ++r) {
    EXPECT_TRUE(ctx[0].Get(r, 0));
    EXPECT_TRUE(ctx[0].Get(r, 1));
    EXPECT_FALSE(ctx[0].Get(r, 2));
  }
  EXPECT_EQ(ctx[0], ctx[1]);
  EXPECT_NE(ctx[0], ctx[2]);
}

TEST(StateContext, GoalContextRequiresPartition) {
  const std::vector<std::vector<std::int64_t>> overlap = {{0, 1}, {1, 2}};
  EXPECT_THROW(MakeGoalContext(3, overlap), std::invalid_argument);
  const std::vector<std::vector<std::int64_t>> incomplete = {{0, 1}};
  EXPECT_THROW(MakeGoalContext(3, incomplete), std::invalid_argument);
}

TEST(StateContext, HashDistinguishes) {
  const auto a = MakeInitialContext(4);
  const std::vector<std::vector<std::int64_t>> groups = {{0, 1, 2, 3}};
  const auto b = MakeGoalContext(4, groups);
  EXPECT_NE(HashContext(a), HashContext(b));
}

}  // namespace
}  // namespace p2::core
