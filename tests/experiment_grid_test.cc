#include "engine/experiment_grid.h"

#include <gtest/gtest.h>

#include "topology/presets.h"

namespace p2::engine {
namespace {

TEST(ExperimentGrid, SingleAxis) {
  const auto configs = SingleAxisConfigs(64);
  ASSERT_EQ(configs.size(), 1u);
  EXPECT_EQ(configs[0].axes, (std::vector<std::int64_t>{64}));
  EXPECT_EQ(configs[0].reduction_axes, (std::vector<int>{0}));
}

TEST(ExperimentGrid, TwoAxisCoversPaperDecompositions) {
  // For 64 devices the paper uses [2 32], [4 16], [8 8], [16 4], [32 2],
  // each with reduction on axis 0 and axis 1.
  const auto configs = TwoAxisConfigs(64);
  EXPECT_EQ(configs.size(), 10u);
  bool found_2_32_r1 = false;
  for (const auto& c : configs) {
    EXPECT_EQ(c.axes.size(), 2u);
    EXPECT_EQ(c.axes[0] * c.axes[1], 64);
    if (c.axes == std::vector<std::int64_t>{2, 32} &&
        c.reduction_axes == std::vector<int>{1}) {
      found_2_32_r1 = true;
    }
  }
  EXPECT_TRUE(found_2_32_r1);
}

TEST(ExperimentGrid, ThreeAxisMatchesPaperShape) {
  // Paper: [16 2 2], [8 2 4], [4 2 8], [2 2 16] for 64 devices, reduce {0,2}.
  const auto configs = ThreeAxisConfigs(64);
  ASSERT_EQ(configs.size(), 4u);
  for (const auto& c : configs) {
    EXPECT_EQ(c.axes.size(), 3u);
    EXPECT_EQ(c.axes[1], 2);
    EXPECT_EQ(c.axes[0] * 2 * c.axes[2], 64);
    EXPECT_EQ(c.reduction_axes, (std::vector<int>{0, 2}));
  }
}

TEST(ExperimentGrid, FullGridForV100TwoNodes) {
  const auto cluster = topology::MakeV100Cluster(2);
  const auto grid = FullGrid(cluster);
  // 16 devices: 1 single + 2*3 two-axis + 2 three-axis ([4 2 2], [2 2 4]).
  EXPECT_EQ(grid.size(), 1u + 6u + 2u);
  for (const auto& c : grid) {
    std::int64_t prod = 1;
    for (auto a : c.axes) prod *= a;
    EXPECT_EQ(prod, 16);
  }
}

TEST(ExperimentGrid, ConfigToString) {
  const ExperimentConfig c{{8, 2, 4}, {0, 2}};
  EXPECT_EQ(c.ToString(), "[8 2 4] reduce 0 2");
}

}  // namespace
}  // namespace p2::engine
