#include "common/math.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace p2 {
namespace {

TEST(Product, Basic) {
  const std::vector<std::int64_t> xs = {2, 3, 4};
  EXPECT_EQ(Product(std::span<const std::int64_t>(xs)), 24);
}

TEST(Product, Empty) {
  EXPECT_EQ(Product(std::span<const std::int64_t>{}), 1);
}

TEST(Product, IntOverload) {
  const std::vector<int> xs = {5, 7};
  EXPECT_EQ(Product(std::span<const int>(xs)), 35);
}

TEST(Product, ThrowsOnNegative) {
  const std::vector<std::int64_t> xs = {2, -1};
  EXPECT_THROW(Product(std::span<const std::int64_t>(xs)),
               std::invalid_argument);
}

TEST(Product, ThrowsOnOverflow) {
  const std::vector<std::int64_t> xs = {std::int64_t{1} << 62, 4};
  EXPECT_THROW(Product(std::span<const std::int64_t>(xs)),
               std::overflow_error);
}

TEST(OrderedFactorizations, FourIntoTwo) {
  const auto fs = OrderedFactorizations(4, 2);
  const std::vector<std::vector<std::int64_t>> want = {{1, 4}, {2, 2}, {4, 1}};
  EXPECT_EQ(fs, want);
}

TEST(OrderedFactorizations, OnePart) {
  const auto fs = OrderedFactorizations(12, 1);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0], (std::vector<std::int64_t>{12}));
}

TEST(OrderedFactorizations, OfOne) {
  const auto fs = OrderedFactorizations(1, 3);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0], (std::vector<std::int64_t>{1, 1, 1}));
}

TEST(OrderedFactorizations, CountMatchesDivisorStructure) {
  // 8 = 2^3 into 3 ordered parts: C(3+2,2) = 10 compositions of exponents.
  EXPECT_EQ(OrderedFactorizations(8, 3).size(), 10u);
}

TEST(OrderedFactorizations, AllProductsCorrect) {
  for (const auto& f : OrderedFactorizations(36, 3)) {
    EXPECT_EQ(f[0] * f[1] * f[2], 36);
  }
}

TEST(OrderedFactorizations, Throws) {
  EXPECT_THROW(OrderedFactorizations(0, 2), std::invalid_argument);
  EXPECT_THROW(OrderedFactorizations(4, 0), std::invalid_argument);
}

TEST(Divisors, Basic) {
  EXPECT_EQ(Divisors(12), (std::vector<std::int64_t>{1, 2, 3, 4, 6, 12}));
  EXPECT_EQ(Divisors(1), (std::vector<std::int64_t>{1}));
  EXPECT_EQ(Divisors(16), (std::vector<std::int64_t>{1, 2, 4, 8, 16}));
}

TEST(MixedRadix, RoundTrip) {
  const std::vector<std::int64_t> radices = {2, 3, 4};
  for (std::int64_t i = 0; i < 24; ++i) {
    const auto digits = IndexToDigits(i, radices);
    EXPECT_EQ(DigitsToIndex(digits, radices), i);
  }
}

TEST(MixedRadix, OutermostFirst) {
  const std::vector<std::int64_t> radices = {2, 3};
  const std::vector<std::int64_t> digits = {1, 2};
  EXPECT_EQ(DigitsToIndex(digits, radices), 5);  // 1*3 + 2
}

TEST(MixedRadix, Errors) {
  const std::vector<std::int64_t> radices = {2, 3};
  const std::vector<std::int64_t> bad_digit = {2, 0};
  EXPECT_THROW(DigitsToIndex(bad_digit, radices), std::out_of_range);
  EXPECT_THROW(IndexToDigits(6, radices), std::out_of_range);
  const std::vector<std::int64_t> short_digits = {1};
  EXPECT_THROW(DigitsToIndex(short_digits, radices), std::invalid_argument);
}

TEST(CeilLog2, Values) {
  EXPECT_EQ(CeilLog2(1), 0);
  EXPECT_EQ(CeilLog2(2), 1);
  EXPECT_EQ(CeilLog2(3), 2);
  EXPECT_EQ(CeilLog2(4), 2);
  EXPECT_EQ(CeilLog2(5), 3);
  EXPECT_EQ(CeilLog2(64), 6);
  EXPECT_THROW(CeilLog2(0), std::invalid_argument);
}

}  // namespace
}  // namespace p2
