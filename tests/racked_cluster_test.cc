// Tests the rack-level third hierarchy tier: oversubscribed rack uplinks,
// three-level synthesis, and the rack-aware program advantage.
#include <gtest/gtest.h>

#include "core/lowering.h"
#include "core/synthesizer.h"
#include "engine/engine.h"
#include "runtime/data_executor.h"
#include "topology/network.h"
#include "topology/presets.h"

namespace p2 {
namespace {

using topology::Cluster;
using topology::MakeRackedA100Cluster;
using topology::Network;

TEST(RackedCluster, HierarchyHasThreeLevels) {
  const Cluster c = MakeRackedA100Cluster(2, 2);
  EXPECT_EQ(c.num_devices(), 64);
  EXPECT_EQ(c.hierarchy().ToShortString(), "[2 2 16]");
  EXPECT_EQ(c.hierarchy().name(0), "rack");
  EXPECT_EQ(c.RackOf(0), 0);
  EXPECT_EQ(c.RackOf(31), 0);
  EXPECT_EQ(c.RackOf(32), 1);
}

TEST(RackedCluster, FlatClusterUnchanged) {
  const Cluster c = topology::MakeA100Cluster(4);
  EXPECT_EQ(c.racks, 1);
  EXPECT_EQ(c.hierarchy().ToShortString(), "[4 16]");
}

TEST(RackedCluster, RejectsUnevenRacks) {
  Cluster c = topology::MakeA100Cluster(3);
  c.racks = 2;
  c.rack_uplink_bandwidth = 10.0;
  EXPECT_THROW(c.hierarchy(), std::invalid_argument);
}

TEST(RackedCluster, NetworkRoutesCrossRackThroughUplink) {
  const Cluster c = MakeRackedA100Cluster(2, 2);
  const auto net = Network::Build(c);
  // Same rack, different node: gpu->sw->nic->rack_sw->nic->sw->gpu (6 links).
  EXPECT_EQ(net.PathLinks(0, 16).size(), 6u);
  // Different racks: two more hops through the core.
  EXPECT_EQ(net.PathLinks(0, 32).size(), 8u);
  // The cross-rack path includes a link at the rack-uplink bandwidth.
  bool uses_uplink = false;
  for (int l : net.PathLinks(0, 32)) {
    if (net.links()[static_cast<std::size_t>(l)].bandwidth ==
        c.rack_uplink_bandwidth * 1e9) {
      uses_uplink = true;
    }
  }
  EXPECT_TRUE(uses_uplink);
}

TEST(RackedCluster, NetworkRequiresUplinkBandwidth) {
  Cluster c = topology::MakeA100Cluster(4);
  c.racks = 2;  // but no uplink bandwidth set
  EXPECT_THROW(Network::Build(c), std::invalid_argument);
}

TEST(RackedCluster, ThreeLevelSynthesisFindsRackAwarePrograms) {
  // Reduction axis spanning rack x node x gpu: the synthesizer can stage
  // gpu-local, node-local and rack-local steps.
  const Cluster c = MakeRackedA100Cluster(2, 2);
  const core::ParallelismMatrix m({{2, 2, 4}, {1, 1, 4}});
  const std::vector<int> axes = {0};
  const auto sh = core::SynthesisHierarchy::Build(
      m, axes, core::SynthesisHierarchyKind::kReductionAxes);
  EXPECT_EQ(sh.levels(), (std::vector<std::int64_t>{1, 2, 2, 4}));
  const auto result = core::SynthesizePrograms(sh);
  EXPECT_GT(result.programs.size(), 50u);
  // Spot-check validity of everything on the full 64-GPU system.
  int checked = 0;
  for (const auto& p : result.programs) {
    if (++checked > 40) break;
    const auto lowered = core::LowerProgram(sh, p);
    std::string err;
    ASSERT_TRUE(core::CheckLoweredOnFullSystem(sh, lowered, &err))
        << core::ToString(p) << ": " << err;
  }
}

TEST(RackedCluster, OversubscriptionMakesCrossRackSlower) {
  const engine::EngineOptions opts = [] {
    engine::EngineOptions o;
    o.payload_bytes = 1e9;
    return o;
  }();
  const engine::Engine eng(MakeRackedA100Cluster(2, 2, /*oversub=*/4.0),
                           opts);
  // Axis 0 of size 4 placed across nodes-within-rack vs across racks.
  const core::ParallelismMatrix within_rack({{1, 2, 2}, {2, 1, 8}});
  const core::ParallelismMatrix across_racks({{2, 2, 1}, {1, 1, 16}});
  const std::vector<int> raxes = {0};
  const double t_within =
      eng.EvaluatePlacement(within_rack, raxes).DefaultAllReduce()
          .measured_seconds;
  const double t_across =
      eng.EvaluatePlacement(across_racks, raxes).DefaultAllReduce()
          .measured_seconds;
  EXPECT_GT(t_across, t_within);
}

TEST(RackedCluster, SynthesisHelpsMostWhenCrossingRacks) {
  engine::EngineOptions opts;
  opts.payload_bytes = 1e9;
  const engine::Engine eng(MakeRackedA100Cluster(2, 2, 4.0), opts);
  // Reduction axis = 16 spanning rack(2) x node(2) x gpu(4).
  const core::ParallelismMatrix m({{2, 2, 4}, {1, 1, 4}});
  const std::vector<int> raxes = {0};
  const auto eval = eng.EvaluatePlacement(m, raxes);
  EXPECT_GT(eval.NumOutperforming(), 0);
  const auto& best =
      eval.programs[static_cast<std::size_t>(eval.BestMeasuredIndex())];
  EXPECT_GT(eval.DefaultAllReduce().measured_seconds /
                best.measured_seconds,
            1.1);
  // The winning program is staged (more than one step).
  EXPECT_GT(best.num_steps, 1);
}

TEST(RackedCluster, DataExecutorStillVerifies) {
  const core::ParallelismMatrix m({{2, 1, 4}, {1, 2, 4}});
  const std::vector<int> axes = {0};
  const auto sh = core::SynthesisHierarchy::Build(
      m, axes, core::SynthesisHierarchyKind::kReductionAxes);
  core::SynthesisOptions sopts;
  sopts.max_program_size = 3;
  const auto result = core::SynthesizePrograms(sh, sopts);
  ASSERT_FALSE(result.programs.empty());
  for (const auto& p : result.programs) {
    const auto lowered = core::LowerProgram(sh, p);
    std::string err;
    ASSERT_TRUE(runtime::DataExecutor::ExecuteAndVerify(sh, lowered, 2, &err))
        << core::ToString(p) << ": " << err;
  }
}

}  // namespace
}  // namespace p2
