// Reproduces Table 1 (synthesis hierarchies) and validates the lowering maps.
#include "core/synthesis_hierarchy.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

namespace p2::core {
namespace {

// Table 1 top: matrix [[1 1 2 2] [1 2 1 2]], reduction on axis 1.
ParallelismMatrix Table1Matrix() {
  return ParallelismMatrix({{1, 1, 2, 2}, {1, 2, 1, 2}});
}

TEST(Table1, ColumnBased) {
  const std::vector<int> axes = {1};
  const auto sh = SynthesisHierarchy::Build(
      Table1Matrix(), axes, SynthesisHierarchyKind::kColumnMajor);
  EXPECT_EQ(sh.levels(),
            (std::vector<std::int64_t>{1, 1, 1, 2, 2, 1, 2, 2}));
  EXPECT_EQ(sh.num_synth_devices(), 16);
  EXPECT_EQ(sh.num_replicas(), 1);
}

TEST(Table1, RowBased) {
  const std::vector<int> axes = {1};
  const auto sh = SynthesisHierarchy::Build(Table1Matrix(), axes,
                                            SynthesisHierarchyKind::kRowMajor);
  EXPECT_EQ(sh.levels(),
            (std::vector<std::int64_t>{1, 1, 2, 2, 1, 2, 1, 2}));
  EXPECT_EQ(sh.num_synth_devices(), 16);
}

TEST(Table1, ReductionAxis) {
  const std::vector<int> axes = {1};
  const auto sh = SynthesisHierarchy::Build(
      Table1Matrix(), axes, SynthesisHierarchyKind::kReductionAxes);
  // [1 2 1 2] with a (root, 1) prepended.
  EXPECT_EQ(sh.levels(), (std::vector<std::int64_t>{1, 1, 2, 1, 2}));
  EXPECT_EQ(sh.num_synth_devices(), 4);
  EXPECT_EQ(sh.num_replicas(), 4);
  ASSERT_EQ(sh.goal_groups().size(), 1u);
  EXPECT_EQ(sh.goal_groups()[0].size(), 4u);
}

TEST(Table1, SystemHierarchy) {
  const std::vector<int> axes = {1};
  const auto sh = SynthesisHierarchy::Build(Table1Matrix(), axes,
                                            SynthesisHierarchyKind::kSystem);
  EXPECT_EQ(sh.levels(), (std::vector<std::int64_t>{1, 2, 2, 4}));
  EXPECT_EQ(sh.num_synth_devices(), 16);
}

// Table 1 bottom: matrix [[1 2 3] [4 5 6] [7 8 9]], reduction on axes 0, 2.
TEST(Table1, MultiAxisRowBasedAndCollapsed) {
  const ParallelismMatrix m({{1, 2, 3}, {4, 5, 6}, {7, 8, 9}});
  const std::vector<int> axes = {0, 2};
  const auto uncollapsed = SynthesisHierarchy::Build(
      m, axes, SynthesisHierarchyKind::kReductionAxes, /*collapse=*/false);
  EXPECT_EQ(uncollapsed.levels(),
            (std::vector<std::int64_t>{1, 1, 2, 3, 7, 8, 9}));
  const auto collapsed = SynthesisHierarchy::Build(
      m, axes, SynthesisHierarchyKind::kReductionAxes, /*collapse=*/true);
  EXPECT_EQ(collapsed.levels(), (std::vector<std::int64_t>{1, 7, 16, 27}));
  EXPECT_EQ(collapsed.num_synth_devices(), 6 * 504);
  EXPECT_EQ(collapsed.num_replicas(), 120);
}

TEST(SynthesisHierarchy, ReductionAxesMapCoversGroups) {
  // The (d) device map must enumerate, per replica, exactly one reduction
  // group of the placement.
  const std::vector<int> axes = {1};
  const auto sh = SynthesisHierarchy::Build(
      Table1Matrix(), axes, SynthesisHierarchyKind::kReductionAxes);
  const auto groups = sh.layout().ReductionGroups(axes);
  std::set<std::vector<std::int64_t>> group_set(groups.begin(), groups.end());
  for (std::int64_t rep = 0; rep < sh.num_replicas(); ++rep) {
    std::vector<std::int64_t> devices;
    for (std::int64_t s = 0; s < sh.num_synth_devices(); ++s) {
      devices.push_back(sh.GlobalDevice(s, rep));
    }
    std::sort(devices.begin(), devices.end());
    EXPECT_TRUE(group_set.count(devices))
        << "replica " << rep << " is not a reduction group";
  }
}

TEST(SynthesisHierarchy, MapIsBijective) {
  const std::vector<int> axes = {0};
  const auto sh = SynthesisHierarchy::Build(
      Table1Matrix(), axes, SynthesisHierarchyKind::kReductionAxes);
  std::set<std::int64_t> all;
  for (std::int64_t rep = 0; rep < sh.num_replicas(); ++rep) {
    for (std::int64_t s = 0; s < sh.num_synth_devices(); ++s) {
      EXPECT_TRUE(all.insert(sh.GlobalDevice(s, rep)).second);
    }
  }
  EXPECT_EQ(static_cast<std::int64_t>(all.size()), sh.num_global_devices());
}

TEST(SynthesisHierarchy, RowMajorIsPermutation) {
  const std::vector<int> axes = {1};
  const auto sh = SynthesisHierarchy::Build(Table1Matrix(), axes,
                                            SynthesisHierarchyKind::kRowMajor);
  std::set<std::int64_t> all;
  for (std::int64_t s = 0; s < sh.num_synth_devices(); ++s) {
    all.insert(sh.GlobalDevice(s, 0));
  }
  EXPECT_EQ(static_cast<std::int64_t>(all.size()), 16);
}

TEST(SynthesisHierarchy, ColumnMajorIsIdentity) {
  const std::vector<int> axes = {1};
  const auto sh = SynthesisHierarchy::Build(
      Table1Matrix(), axes, SynthesisHierarchyKind::kColumnMajor);
  for (std::int64_t s = 0; s < sh.num_synth_devices(); ++s) {
    EXPECT_EQ(sh.GlobalDevice(s, 0), s);
  }
}

TEST(SynthesisHierarchy, GoalGroupsPartitionSynthDevices) {
  for (const auto kind :
       {SynthesisHierarchyKind::kSystem, SynthesisHierarchyKind::kColumnMajor,
        SynthesisHierarchyKind::kRowMajor,
        SynthesisHierarchyKind::kReductionAxes}) {
    const std::vector<int> axes = {0};
    const auto sh = SynthesisHierarchy::Build(Table1Matrix(), axes, kind);
    std::vector<int> seen(static_cast<std::size_t>(sh.num_synth_devices()), 0);
    for (const auto& g : sh.goal_groups()) {
      for (std::int64_t s : g) ++seen[static_cast<std::size_t>(s)];
    }
    for (int c : seen) EXPECT_EQ(c, 1) << ToString(kind);
  }
}

TEST(SynthesisHierarchy, RowMajorGoalGroupsAreContiguousReductionAxis) {
  // In row-major numbering the reduction axis digits are consecutive, so
  // reduction groups are easy to express -- the paper's key insight.
  const std::vector<int> axes = {1};
  const auto sh = SynthesisHierarchy::Build(Table1Matrix(), axes,
                                            SynthesisHierarchyKind::kRowMajor);
  for (const auto& g : sh.goal_groups()) {
    ASSERT_EQ(g.size(), 4u);
    // Members are consecutive synthesis indices (stride 1).
    for (std::size_t i = 1; i < g.size(); ++i) {
      EXPECT_EQ(g[i], g[i - 1] + 1);
    }
  }
}

TEST(SynthesisHierarchy, Errors) {
  const std::vector<int> none = {};
  EXPECT_THROW(SynthesisHierarchy::Build(
                   Table1Matrix(), none, SynthesisHierarchyKind::kReductionAxes),
               std::invalid_argument);
  const std::vector<int> bad = {2};
  EXPECT_THROW(SynthesisHierarchy::Build(
                   Table1Matrix(), bad, SynthesisHierarchyKind::kReductionAxes),
               std::out_of_range);
  const std::vector<int> dup = {0, 0};
  EXPECT_THROW(SynthesisHierarchy::Build(
                   Table1Matrix(), dup, SynthesisHierarchyKind::kReductionAxes),
               std::invalid_argument);
}

TEST(SynthesisHierarchy, KindNames) {
  EXPECT_STREQ(ToString(SynthesisHierarchyKind::kReductionAxes),
               "reduction-axes");
  EXPECT_STREQ(ToString(SynthesisHierarchyKind::kSystem), "system");
}

}  // namespace
}  // namespace p2::core
