#include "core/synthesizer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/lowering.h"

namespace p2::core {
namespace {

SynthesisHierarchy Fig2dHierarchy() {
  const ParallelismMatrix m({{1, 1, 2, 2}, {1, 2, 1, 2}});
  const std::vector<int> axes = {1};
  return SynthesisHierarchy::Build(m, axes,
                                   SynthesisHierarchyKind::kReductionAxes);
}

bool ContainsProgram(const SynthesisResult& r, const Program& p) {
  return std::find(r.programs.begin(), r.programs.end(), p) != r.programs.end();
}

TEST(Synthesizer, FindsSingleStepAllReduce) {
  const auto sh = Fig2dHierarchy();
  const auto result = SynthesizePrograms(sh);
  ASSERT_FALSE(result.programs.empty());
  // The shortest program is the single AllReduce over the whole group.
  EXPECT_EQ(result.programs.front().size(), 1u);
  EXPECT_EQ(result.programs.front()[0].op, Collective::kAllReduce);
}

TEST(Synthesizer, FindsFig3bTwoStepAllReduce) {
  const auto sh = Fig2dHierarchy();
  const auto result = SynthesizePrograms(sh);
  const Program fig3b = {
      Instruction{2, Form::InsideGroup(), Collective::kAllReduce},
      Instruction{2, Form::Parallel(0), Collective::kAllReduce}};
  EXPECT_TRUE(ContainsProgram(result, fig3b));
}

TEST(Synthesizer, FindsReduceAllReduceBroadcast) {
  const auto sh = Fig2dHierarchy();
  const auto result = SynthesizePrograms(sh);
  const Program fig3c = {
      Instruction{2, Form::InsideGroup(), Collective::kReduce},
      Instruction{2, Form::Master(0), Collective::kAllReduce},
      Instruction{2, Form::InsideGroup(), Collective::kBroadcast}};
  EXPECT_TRUE(ContainsProgram(result, fig3c));
}

TEST(Synthesizer, FindsBlueConnect) {
  const auto sh = Fig2dHierarchy();
  const auto result = SynthesizePrograms(sh);
  const Program blueconnect = {
      Instruction{2, Form::InsideGroup(), Collective::kReduceScatter},
      Instruction{2, Form::Parallel(0), Collective::kAllReduce},
      Instruction{2, Form::InsideGroup(), Collective::kAllGather}};
  EXPECT_TRUE(ContainsProgram(result, blueconnect));
}

TEST(Synthesizer, AllProgramsLowerAndValidateOnFullSystem) {
  const auto sh = Fig2dHierarchy();
  const auto result = SynthesizePrograms(sh);
  for (const Program& p : result.programs) {
    const auto lowered = LowerProgram(sh, p);
    std::string err;
    EXPECT_TRUE(CheckLoweredOnFullSystem(sh, lowered, &err))
        << ToString(p) << ": " << err;
  }
}

TEST(Synthesizer, ProgramsAreUnique) {
  const auto sh = Fig2dHierarchy();
  const auto result = SynthesizePrograms(sh);
  std::set<std::string> keys;
  for (const Program& p : result.programs) keys.insert(ToString(p));
  EXPECT_EQ(keys.size(), result.programs.size());
}

TEST(Synthesizer, SortedBySize) {
  const auto sh = Fig2dHierarchy();
  const auto result = SynthesizePrograms(sh);
  for (std::size_t i = 1; i < result.programs.size(); ++i) {
    EXPECT_LE(result.programs[i - 1].size(), result.programs[i].size());
  }
}

TEST(Synthesizer, RespectsSizeLimit) {
  const auto sh = Fig2dHierarchy();
  SynthesisOptions opts;
  opts.max_program_size = 2;
  const auto result = SynthesizePrograms(sh, opts);
  for (const Program& p : result.programs) EXPECT_LE(p.size(), 2u);
  // Size 2 is enough for AllReduce and the Fig 3b pattern but not Fig 3c.
  EXPECT_GE(result.programs.size(), 2u);
}

TEST(Synthesizer, LargerLimitFindsMorePrograms) {
  const auto sh = Fig2dHierarchy();
  SynthesisOptions small, large;
  small.max_program_size = 2;
  large.max_program_size = 4;
  EXPECT_LT(SynthesizePrograms(sh, small).programs.size(),
            SynthesizePrograms(sh, large).programs.size());
}

TEST(Synthesizer, MaxProgramsCapRespected) {
  const auto sh = Fig2dHierarchy();
  SynthesisOptions opts;
  opts.max_programs = 3;
  const auto result = SynthesizePrograms(sh, opts);
  EXPECT_EQ(result.programs.size(), 3u);
}

TEST(Synthesizer, TrivialHierarchyOnlyDirectPrograms) {
  // Reduction axis fully inside one level: [root=1, 1, 8]; the only grouping
  // is the full group, so programs are AR / RS->AG / RD->BC (and no more).
  const ParallelismMatrix m({{1, 8}, {2, 2}});
  const std::vector<int> axes = {0};
  const auto sh =
      SynthesisHierarchy::Build(m, axes, SynthesisHierarchyKind::kReductionAxes);
  const auto result = SynthesizePrograms(sh);
  ASSERT_EQ(result.programs.size(), 3u);
  EXPECT_EQ(result.programs[0].size(), 1u);  // AllReduce
  EXPECT_EQ(result.programs[1].size(), 2u);
  EXPECT_EQ(result.programs[2].size(), 2u);
}

TEST(Synthesizer, StatsPopulated) {
  const auto sh = Fig2dHierarchy();
  const auto result = SynthesizePrograms(sh);
  EXPECT_GT(result.stats.instructions_tried, 0);
  EXPECT_GT(result.stats.applications_succeeded, 0);
  EXPECT_GT(result.stats.alphabet_size, 0);
  EXPECT_GE(result.stats.seconds, 0.0);
  // Transposition-table counters: the Fig 2d search revisits shared states
  // (e.g. RS;AG and the identity-free reorderings) and replays memoized
  // completions.
  EXPECT_GT(result.stats.states_visited, 0);
  EXPECT_GT(result.stats.states_deduped, 0);
  EXPECT_GT(result.stats.branches_pruned, 0);
}

TEST(Synthesizer, ReferenceOracleAgreesOnFig2d) {
  const auto sh = Fig2dHierarchy();
  const auto fast = SynthesizePrograms(sh);
  const auto oracle = SynthesizeProgramsReference(sh);
  EXPECT_EQ(fast.programs, oracle.programs);
  // The point of the transposition table: far fewer instruction
  // applications than the blind DFS for the same program list.
  EXPECT_LT(fast.stats.instructions_tried, oracle.stats.instructions_tried);
}

TEST(Synthesizer, CapKeepsTheSmallestPrograms) {
  // Under the cap the transposition search returns a prefix of its own
  // uncapped size-ordered list (the reference DFS keeps an arbitrary
  // DFS-order subset instead — the one documented divergence).
  const auto sh = Fig2dHierarchy();
  SynthesisOptions capped, full;
  capped.max_programs = 5;
  const auto some = SynthesizePrograms(sh, capped);
  const auto all = SynthesizePrograms(sh, full);
  ASSERT_EQ(some.programs.size(), 5u);
  for (std::size_t i = 0; i < some.programs.size(); ++i) {
    EXPECT_EQ(some.programs[i], all.programs[i]);
  }
}

TEST(Synthesizer, DeeperHierarchyFindsRicherPrograms) {
  // Reduction axis split over three structured levels.
  const ParallelismMatrix m({{2, 2, 2}, {1, 1, 1}});
  const std::vector<int> axes = {0};
  const auto sh =
      SynthesisHierarchy::Build(m, axes, SynthesisHierarchyKind::kReductionAxes);
  EXPECT_EQ(sh.num_synth_devices(), 8);
  const auto result = SynthesizePrograms(sh);
  // Must include the fully hierarchical 3-step AllReduce chain.
  bool found_three_step_ar = false;
  for (const Program& p : result.programs) {
    if (p.size() == 3 && std::all_of(p.begin(), p.end(), [](const auto& i) {
          return i.op == Collective::kAllReduce;
        })) {
      found_three_step_ar = true;
    }
  }
  EXPECT_TRUE(found_three_step_ar);
  EXPECT_GT(result.programs.size(), 20u);
}

}  // namespace
}  // namespace p2::core
