#include "runtime/data_executor.h"

#include <gtest/gtest.h>

#include "core/synthesizer.h"
#include "engine/baselines.h"

namespace p2::runtime {
namespace {

using core::ParallelismMatrix;
using core::SynthesisHierarchy;
using core::SynthesisHierarchyKind;

SynthesisHierarchy Fig2dHierarchy() {
  const ParallelismMatrix m({{1, 1, 2, 2}, {1, 2, 1, 2}});
  const std::vector<int> axes = {1};
  return SynthesisHierarchy::Build(m, axes,
                                   SynthesisHierarchyKind::kReductionAxes);
}

TEST(DataExecutor, DefaultAllReduceComputesGroupSums) {
  const auto sh = Fig2dHierarchy();
  const auto lowered =
      core::LowerProgram(sh, engine::DefaultAllReduceProgram());
  std::string err;
  EXPECT_TRUE(DataExecutor::ExecuteAndVerify(sh, lowered, 4, &err)) << err;
}

TEST(DataExecutor, CanonicalProgramsComputeGroupSums) {
  const auto sh = Fig2dHierarchy();
  const auto rab = engine::ReduceAllReduceBroadcast(sh);
  const auto rsag = engine::ReduceScatterAllReduceAllGather(sh);
  ASSERT_TRUE(rab.has_value());
  ASSERT_TRUE(rsag.has_value());
  for (const auto& p : {*rab, *rsag}) {
    const auto lowered = core::LowerProgram(sh, p);
    std::string err;
    EXPECT_TRUE(DataExecutor::ExecuteAndVerify(sh, lowered, 8, &err))
        << core::ToString(p) << ": " << err;
  }
}

TEST(DataExecutor, EverySynthesizedProgramComputesTheRightResult) {
  const auto sh = Fig2dHierarchy();
  const auto result = core::SynthesizePrograms(sh);
  ASSERT_GT(result.programs.size(), 10u);
  for (const auto& p : result.programs) {
    const auto lowered = core::LowerProgram(sh, p);
    std::string err;
    EXPECT_TRUE(DataExecutor::ExecuteAndVerify(sh, lowered, 2, &err))
        << core::ToString(p) << ": " << err;
  }
}

TEST(DataExecutor, DetectsCorruptedPrograms) {
  const auto sh = Fig2dHierarchy();
  auto lowered = core::LowerProgram(sh, engine::DefaultAllReduceProgram());
  // Merge two groups that must not reduce together.
  auto& groups = lowered.steps[0].groups;
  ASSERT_GE(groups.size(), 2u);
  for (std::int64_t d : groups[1]) groups[0].push_back(d);
  groups.erase(groups.begin() + 1);
  std::string err;
  EXPECT_FALSE(DataExecutor::ExecuteAndVerify(sh, lowered, 2, &err));
  EXPECT_FALSE(err.empty());
}

TEST(DataExecutor, DetectsIncompletePrograms) {
  const auto sh = Fig2dHierarchy();
  const auto rab = engine::ReduceAllReduceBroadcast(sh);
  ASSERT_TRUE(rab.has_value());
  auto lowered = core::LowerProgram(sh, *rab);
  lowered.steps.pop_back();  // drop the Broadcast
  std::string err;
  EXPECT_FALSE(DataExecutor::ExecuteAndVerify(sh, lowered, 2, &err));
}

TEST(DataExecutor, InitialBuffersAreDistinctPerDevice) {
  const auto a = DataExecutor::InitialBuffer(0, 4, 4);
  const auto b = DataExecutor::InitialBuffer(1, 4, 4);
  EXPECT_EQ(a.size(), 16u);
  EXPECT_NE(a, b);
}

TEST(DataExecutor, MultiAxisReductionVerifies) {
  const ParallelismMatrix m({{2, 1}, {1, 2}, {1, 4}});
  const std::vector<int> axes = {0, 2};
  const auto sh =
      SynthesisHierarchy::Build(m, axes, SynthesisHierarchyKind::kReductionAxes);
  const auto result = core::SynthesizePrograms(sh);
  ASSERT_FALSE(result.programs.empty());
  for (const auto& p : result.programs) {
    const auto lowered = core::LowerProgram(sh, p);
    std::string err;
    EXPECT_TRUE(DataExecutor::ExecuteAndVerify(sh, lowered, 2, &err))
        << core::ToString(p) << ": " << err;
  }
}

}  // namespace
}  // namespace p2::runtime
