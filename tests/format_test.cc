#include "common/format.h"

#include <gtest/gtest.h>

namespace p2 {
namespace {

TEST(BracketJoin, Int64) {
  const std::vector<std::int64_t> xs = {1, 2, 2, 4};
  EXPECT_EQ(BracketJoin(std::span<const std::int64_t>(xs)), "[1 2 2 4]");
}

TEST(BracketJoin, Empty) {
  EXPECT_EQ(BracketJoin(std::span<const std::int64_t>{}), "[]");
}

TEST(NestedBracketJoin, Matrix) {
  const std::vector<std::vector<std::int64_t>> rows = {{1, 2}, {4, 8}};
  EXPECT_EQ(NestedBracketJoin(rows), "[[1 2] [4 8]]");
}

TEST(FormatSeconds, Ranges) {
  EXPECT_EQ(FormatSeconds(89.70), "89.70");
  EXPECT_EQ(FormatSeconds(0.17), "0.17");
  EXPECT_EQ(FormatSeconds(0.003), "0.0030");
  EXPECT_EQ(FormatSeconds(123.4), "123.4");
}

TEST(TextTable, RendersAligned) {
  TextTable t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22"});
  const std::string r = t.Render();
  EXPECT_NE(r.find("name"), std::string::npos);
  EXPECT_NE(r.find("alpha"), std::string::npos);
  // Header separator present.
  EXPECT_NE(r.find("---"), std::string::npos);
}

TEST(TextTable, RejectsWrongArity) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.AddRow({"only-one"}), std::invalid_argument);
}

}  // namespace
}  // namespace p2
