#include "cost/cost_model.h"

#include <gtest/gtest.h>

#include "engine/baselines.h"
#include "topology/presets.h"

namespace p2::cost {
namespace {

using core::NcclAlgo;
using core::ParallelismMatrix;
using core::SynthesisHierarchy;
using core::SynthesisHierarchyKind;

core::LoweredProgram LowerOn(const ParallelismMatrix& m,
                             const std::vector<int>& axes,
                             const core::Program& program) {
  const auto sh = SynthesisHierarchy::Build(
      m, axes, SynthesisHierarchyKind::kReductionAxes);
  return core::LowerProgram(sh, program);
}

TEST(CostModel, RingAllReduceFormulaInsideNvSwitchNode) {
  const CostModel model(topology::MakeA100Cluster(2));
  // Groups of 4 inside nodes; each GPU uplink carries 2(n-1)/n * S.
  const auto lowered = LowerOn(ParallelismMatrix({{1, 4}, {2, 4}}), {0},
                               engine::DefaultAllReduceProgram());
  const double s = 4e9;
  const double t = model.PredictProgram(lowered, s, NcclAlgo::kRing);
  const double expected = 2.0 * 3.0 / 4.0 * s / (270e9);
  EXPECT_NEAR(t, expected, expected * 0.05);
}

TEST(CostModel, NicShareDominatesCrossNodePlacements) {
  const CostModel model(topology::MakeA100Cluster(4));
  // [[4 1] [1 16]]: 16 rings of 4, one member per node, all share each NIC.
  const auto lowered = LowerOn(ParallelismMatrix({{4, 1}, {1, 16}}), {0},
                               engine::DefaultAllReduceProgram());
  const double s = 8e9;
  const double t = model.PredictProgram(lowered, s, NcclAlgo::kRing);
  // Per ring edge: 2*(3/4)*S; each NIC direction carries 16 edges, degraded
  // by the model's static flow-count congestion (1% per extra flow).
  const double expected = 16.0 * 1.5 * s / 7.5e9 * (1.0 + 0.01 * 15);
  EXPECT_NEAR(t, expected, expected * 0.05);
}

TEST(CostModel, PlacementImpactMatchesPaperOrdering) {
  // Table 3 row B: [[1 4][4 4]] fast, [[2 2][2 8]] slow, [[4 1][1 16]]
  // slowest for reduction on axis 0.
  const CostModel model(topology::MakeA100Cluster(4));
  const auto t1 = model.PredictProgram(
      LowerOn(ParallelismMatrix({{1, 4}, {4, 4}}), {0},
              engine::DefaultAllReduceProgram()),
      8e9, NcclAlgo::kRing);
  const auto t2 = model.PredictProgram(
      LowerOn(ParallelismMatrix({{2, 2}, {2, 8}}), {0},
              engine::DefaultAllReduceProgram()),
      8e9, NcclAlgo::kRing);
  const auto t3 = model.PredictProgram(
      LowerOn(ParallelismMatrix({{4, 1}, {1, 16}}), {0},
              engine::DefaultAllReduceProgram()),
      8e9, NcclAlgo::kRing);
  EXPECT_LT(t1, t2);
  EXPECT_LT(t2, t3);
  EXPECT_GT(t3 / t1, 100.0);  // the paper's orders-of-magnitude gap
}

TEST(CostModel, ReduceScatterPlusAllGatherMatchesAllReduce) {
  const CostModel model(topology::MakeA100Cluster(2));
  const ParallelismMatrix m({{2, 16}});
  const std::vector<int> axes = {0};
  const auto sh = SynthesisHierarchy::Build(
      m, axes, SynthesisHierarchyKind::kReductionAxes);
  const auto ar = core::LowerProgram(sh, engine::DefaultAllReduceProgram());
  const core::Program rs_ag = {
      core::Instruction{0, core::Form::InsideGroup(),
                        core::Collective::kReduceScatter},
      core::Instruction{0, core::Form::InsideGroup(),
                        core::Collective::kAllGather}};
  const auto rsag = core::LowerProgram(sh, rs_ag);
  const double t_ar = model.PredictProgram(ar, 8e9, NcclAlgo::kRing);
  const double t_rsag = model.PredictProgram(rsag, 8e9, NcclAlgo::kRing);
  EXPECT_NEAR(t_ar, t_rsag, t_ar * 0.02);
}

TEST(CostModel, TreeBeatsRingWhenGroupsMixLocalAndRemote) {
  // Paper Table 3 B2 behavior: [[2 2] [2 8]] reduce axis 0 (2 local x 2
  // remote) is faster with Tree than Ring.
  const CostModel model(topology::MakeA100Cluster(4));
  const auto lowered = LowerOn(ParallelismMatrix({{2, 2}, {2, 8}}), {0},
                               engine::DefaultAllReduceProgram());
  const double ring = model.PredictProgram(lowered, 8e9, NcclAlgo::kRing);
  const double tree = model.PredictProgram(lowered, 8e9, NcclAlgo::kTree);
  EXPECT_LT(tree, ring);
}

TEST(CostModel, RingBeatsTreeForFullyRemoteGroups) {
  // Paper Table 3 B3 behavior.
  const CostModel model(topology::MakeA100Cluster(4));
  const auto lowered = LowerOn(ParallelismMatrix({{4, 1}, {1, 16}}), {0},
                               engine::DefaultAllReduceProgram());
  const double ring = model.PredictProgram(lowered, 8e9, NcclAlgo::kRing);
  const double tree = model.PredictProgram(lowered, 8e9, NcclAlgo::kTree);
  EXPECT_LT(ring, tree);
}

TEST(CostModel, MonotoneInPayload) {
  const CostModel model(topology::MakeV100Cluster(2));
  const auto lowered = LowerOn(ParallelismMatrix({{2, 4}, {1, 2}}), {0},
                               engine::DefaultAllReduceProgram());
  double prev = 0.0;
  for (double s : {1e8, 1e9, 4e9, 1e10}) {
    const double t = model.PredictProgram(lowered, s, NcclAlgo::kRing);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

core::LoweredStep StepWithGroups(
    std::vector<std::vector<std::int64_t>> groups) {
  core::LoweredStep step;
  step.op = core::Collective::kAllReduce;
  step.groups = std::move(groups);
  step.in_fraction = 1.0;
  step.out_fraction = 1.0;
  return step;
}

TEST(CostModel, V100CrossDomainCostlierThanWithinDomain) {
  const CostModel model(topology::MakeV100Cluster(1));
  // Ranks {0,2}: same PCIe domain (non-adjacent on the NVLink ring).
  // Ranks {2,6}: different PCIe domains — traffic crosses the shared NIC.
  const double within = model.PredictStep(StepWithGroups({{0, 2}}), 1e9,
                                          NcclAlgo::kRing);
  const double across = model.PredictStep(StepWithGroups({{2, 6}}), 1e9,
                                          NcclAlgo::kRing);
  EXPECT_GT(across, within * 2.0);
}

TEST(CostModel, V100AdjacentPairUsesNvLink) {
  const CostModel model(topology::MakeV100Cluster(1));
  const double adjacent = model.PredictStep(StepWithGroups({{0, 1}}), 1e9,
                                            NcclAlgo::kRing);
  const double pcie = model.PredictStep(StepWithGroups({{0, 2}}), 1e9,
                                        NcclAlgo::kRing);
  EXPECT_LT(adjacent, pcie);
}

TEST(CostModel, SingleMemberGroupCostsNothing) {
  // A degenerate one-device "group" exchanges no data: zero bytes on every
  // link and zero rounds of latency (the Rounds guard), under both algos.
  const CostModel model(topology::MakeA100Cluster(2));
  for (const auto algo : {NcclAlgo::kRing, NcclAlgo::kTree}) {
    for (const auto op :
         {core::Collective::kAllReduce, core::Collective::kReduce,
          core::Collective::kBroadcast, core::Collective::kReduceScatter,
          core::Collective::kAllGather}) {
      auto step = StepWithGroups({{3}});
      step.op = op;
      EXPECT_EQ(model.PredictStep(step, 1e9, algo), 0.0)
          << core::ToString(op);
    }
  }
}

TEST(CostModel, CachedSortedOrdersMatchFallback) {
  // A step lowered by LowerProgram carries precomputed sorted orders; the
  // same step with the cache stripped must predict the identical time via
  // the scratch fallback.
  const CostModel model(topology::MakeA100Cluster(2));
  const auto lowered = LowerOn(ParallelismMatrix({{2, 8}, {1, 2}}), {0},
                               engine::DefaultAllReduceProgram());
  for (const auto& step : lowered.steps) {
    ASSERT_EQ(step.sorted_orders.size(), step.groups.size());
    auto stripped = step;
    stripped.sorted_orders.clear();
    for (const auto algo : {NcclAlgo::kRing, NcclAlgo::kTree}) {
      EXPECT_EQ(model.PredictStep(step, 4e9, algo),
                model.PredictStep(stripped, 4e9, algo));
    }
  }
}

TEST(CostModel, ConcurrentGroupsShareNics) {
  const CostModel model(topology::MakeA100Cluster(2));
  // One cross-node pair vs eight concurrent cross-node pairs: the shared
  // NIC divides, so the step slows down ~8x.
  const double one =
      model.PredictStep(StepWithGroups({{0, 16}}), 1e9, NcclAlgo::kRing);
  std::vector<std::vector<std::int64_t>> eight;
  for (std::int64_t i = 0; i < 8; ++i) eight.push_back({i, 16 + i});
  const double many =
      model.PredictStep(StepWithGroups(std::move(eight)), 1e9,
                        NcclAlgo::kRing);
  // 8x the per-flow share, plus the model's 1%-per-extra-flow congestion.
  EXPECT_NEAR(many / one, 8.0 * 1.07, 0.2);
}

}  // namespace
}  // namespace p2::cost
