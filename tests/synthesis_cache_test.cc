// The synthesis cache's contract (ISSUE 1): placements inducing isomorphic
// synthesis hierarchies — equal signatures — share one synthesis run and get
// identical program sets; differing signatures miss.
#include "engine/synthesis_cache.h"

#include <gtest/gtest.h>

#include "core/synthesis_hierarchy.h"

namespace p2::engine {
namespace {

using core::ParallelismMatrix;
using core::SynthesisHierarchy;
using core::SynthesisHierarchyKind;

// Two placements of axes (8, 2, 2) on a [2 16] hierarchy that differ only in
// where the *non-reduction* axes land: their reduction-axis rows agree, so
// under kReductionAxes they pose the same synthesis problem.
SynthesisHierarchy IsomorphicA() {
  const ParallelismMatrix m({{1, 8}, {1, 2}, {2, 1}});
  const std::vector<int> raxes = {0};
  return SynthesisHierarchy::Build(m, raxes,
                                   SynthesisHierarchyKind::kReductionAxes);
}

SynthesisHierarchy IsomorphicB() {
  const ParallelismMatrix m({{1, 8}, {2, 1}, {1, 2}});
  const std::vector<int> raxes = {0};
  return SynthesisHierarchy::Build(m, raxes,
                                   SynthesisHierarchyKind::kReductionAxes);
}

// Same axes, but the reduction axis is split differently: another signature.
SynthesisHierarchy Different() {
  const ParallelismMatrix m({{2, 4}, {1, 2}, {1, 2}});
  const std::vector<int> raxes = {0};
  return SynthesisHierarchy::Build(m, raxes,
                                   SynthesisHierarchyKind::kReductionAxes);
}

TEST(Signature, InvariantUnderDeviceRenumbering) {
  EXPECT_EQ(IsomorphicA().Signature(), IsomorphicB().Signature());
  // ...even though the placements map synthesis devices to different global
  // devices.
  bool same_map = true;
  const auto a = IsomorphicA();
  const auto b = IsomorphicB();
  ASSERT_EQ(a.num_synth_devices(), b.num_synth_devices());
  ASSERT_EQ(a.num_replicas(), b.num_replicas());
  for (std::int64_t r = 0; r < a.num_replicas(); ++r) {
    for (std::int64_t s = 0; s < a.num_synth_devices(); ++s) {
      if (a.GlobalDevice(s, r) != b.GlobalDevice(s, r)) same_map = false;
    }
  }
  EXPECT_FALSE(same_map);
}

TEST(Signature, DistinguishesDifferentSynthesisProblems) {
  EXPECT_NE(IsomorphicA().Signature(), Different().Signature());
}

TEST(Signature, CoversLevelsAndGoal) {
  const auto sig = IsomorphicA().Signature();
  EXPECT_NE(sig.find("levels:"), std::string::npos);
  EXPECT_NE(sig.find("goal:"), std::string::npos);
}

TEST(SynthesisCache, HitsOnEqualSignaturesAndReturnsIdenticalPrograms) {
  SynthesisCache cache;
  const core::SynthesisOptions options;
  const auto first = cache.GetOrSynthesize(IsomorphicA(), options);
  const auto second = cache.GetOrSynthesize(IsomorphicB(), options);
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(first.get(), second.get());  // the very same memoized result
  EXPECT_GE(cache.stats().seconds_saved, 0.0);

  // A hit is indistinguishable from a fresh synthesis (determinism).
  const auto fresh = core::SynthesizePrograms(IsomorphicB(), options);
  ASSERT_EQ(second->programs.size(), fresh.programs.size());
  for (std::size_t i = 0; i < fresh.programs.size(); ++i) {
    EXPECT_EQ(second->programs[i], fresh.programs[i]);
  }
}

TEST(SynthesisCache, MissesOnDifferentSignatures) {
  SynthesisCache cache;
  const core::SynthesisOptions options;
  cache.GetOrSynthesize(IsomorphicA(), options);
  cache.GetOrSynthesize(Different(), options);
  EXPECT_EQ(cache.stats().misses, 2);
  EXPECT_EQ(cache.stats().hits, 0);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(SynthesisCache, KeyIncludesSynthesisOptions) {
  SynthesisCache cache;
  core::SynthesisOptions small;
  small.max_program_size = 2;
  core::SynthesisOptions large;
  large.max_program_size = 4;
  const auto a = cache.GetOrSynthesize(IsomorphicA(), small);
  const auto b = cache.GetOrSynthesize(IsomorphicA(), large);
  EXPECT_EQ(cache.stats().misses, 2);  // different options never alias
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(a.get(), b.get());
  EXPECT_LE(a->programs.size(), b->programs.size());
}

TEST(SynthesisCache, ClearResetsEverything) {
  SynthesisCache cache;
  const core::SynthesisOptions options;
  cache.GetOrSynthesize(IsomorphicA(), options);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().misses, 0);
  cache.GetOrSynthesize(IsomorphicA(), options);
  EXPECT_EQ(cache.stats().misses, 1);
}

}  // namespace
}  // namespace p2::engine
