// The synthesis cache's contract (ISSUE 1): placements inducing isomorphic
// synthesis hierarchies — equal signatures — share one synthesis run and get
// identical program sets; differing signatures miss.
#include "engine/synthesis_cache.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string_view>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "common/fault_injection.h"
#include "core/synthesis_hierarchy.h"

namespace p2::engine {
namespace {

using core::ParallelismMatrix;
using core::SynthesisHierarchy;
using core::SynthesisHierarchyKind;

// Two placements of axes (8, 2, 2) on a [2 16] hierarchy that differ only in
// where the *non-reduction* axes land: their reduction-axis rows agree, so
// under kReductionAxes they pose the same synthesis problem.
SynthesisHierarchy IsomorphicA() {
  const ParallelismMatrix m({{1, 8}, {1, 2}, {2, 1}});
  const std::vector<int> raxes = {0};
  return SynthesisHierarchy::Build(m, raxes,
                                   SynthesisHierarchyKind::kReductionAxes);
}

SynthesisHierarchy IsomorphicB() {
  const ParallelismMatrix m({{1, 8}, {2, 1}, {1, 2}});
  const std::vector<int> raxes = {0};
  return SynthesisHierarchy::Build(m, raxes,
                                   SynthesisHierarchyKind::kReductionAxes);
}

// Same axes, but the reduction axis is split differently: another signature.
SynthesisHierarchy Different() {
  const ParallelismMatrix m({{2, 4}, {1, 2}, {1, 2}});
  const std::vector<int> raxes = {0};
  return SynthesisHierarchy::Build(m, raxes,
                                   SynthesisHierarchyKind::kReductionAxes);
}

TEST(Signature, InvariantUnderDeviceRenumbering) {
  EXPECT_EQ(IsomorphicA().Signature(), IsomorphicB().Signature());
  // ...even though the placements map synthesis devices to different global
  // devices.
  bool same_map = true;
  const auto a = IsomorphicA();
  const auto b = IsomorphicB();
  ASSERT_EQ(a.num_synth_devices(), b.num_synth_devices());
  ASSERT_EQ(a.num_replicas(), b.num_replicas());
  for (std::int64_t r = 0; r < a.num_replicas(); ++r) {
    for (std::int64_t s = 0; s < a.num_synth_devices(); ++s) {
      if (a.GlobalDevice(s, r) != b.GlobalDevice(s, r)) same_map = false;
    }
  }
  EXPECT_FALSE(same_map);
}

TEST(Signature, DistinguishesDifferentSynthesisProblems) {
  EXPECT_NE(IsomorphicA().Signature(), Different().Signature());
}

TEST(Signature, CoversLevelsAndGoal) {
  const auto sig = IsomorphicA().Signature();
  EXPECT_NE(sig.find("levels:"), std::string::npos);
  EXPECT_NE(sig.find("goal:"), std::string::npos);
}

TEST(SynthesisCache, HitsOnEqualSignaturesAndReturnsIdenticalPrograms) {
  SynthesisCache cache;
  const core::SynthesisOptions options;
  const auto first = cache.GetOrSynthesize(IsomorphicA(), options);
  const auto second = cache.GetOrSynthesize(IsomorphicB(), options);
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(first.get(), second.get());  // the very same memoized result
  EXPECT_GE(cache.stats().seconds_saved, 0.0);

  // A hit is indistinguishable from a fresh synthesis (determinism).
  const auto fresh = core::SynthesizePrograms(IsomorphicB(), options);
  ASSERT_EQ(second->programs.size(), fresh.programs.size());
  for (std::size_t i = 0; i < fresh.programs.size(); ++i) {
    EXPECT_EQ(second->programs[i], fresh.programs[i]);
  }
}

TEST(SynthesisCache, MissesOnDifferentSignatures) {
  SynthesisCache cache;
  const core::SynthesisOptions options;
  cache.GetOrSynthesize(IsomorphicA(), options);
  cache.GetOrSynthesize(Different(), options);
  EXPECT_EQ(cache.stats().misses, 2);
  EXPECT_EQ(cache.stats().hits, 0);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(SynthesisCache, KeyIncludesSynthesisOptions) {
  SynthesisCache cache;
  core::SynthesisOptions small;
  small.max_program_size = 2;
  core::SynthesisOptions large;
  large.max_program_size = 4;
  const auto a = cache.GetOrSynthesize(IsomorphicA(), small);
  const auto b = cache.GetOrSynthesize(IsomorphicA(), large);
  EXPECT_EQ(cache.stats().misses, 2);  // different options never alias
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(a.get(), b.get());
  EXPECT_LE(a->programs.size(), b->programs.size());
}

TEST(SynthesisCache, LargerCapEntriesServeSmallerCapQueries) {
  // max_programs-aware subsumption: an entry synthesized under a larger cap
  // serves a smaller-cap query by truncation — a hit, not a miss — and the
  // truncated list equals what a fresh small-cap synthesis would return
  // (the synthesizer keeps the smallest programs, a size-ordered prefix).
  SynthesisCache cache;
  core::SynthesisOptions unbounded;  // default cap 2^20: effectively complete
  const auto full = cache.GetOrSynthesize(IsomorphicA(), unbounded);
  ASSERT_GT(full->programs.size(), 2u);

  core::SynthesisOptions capped = unbounded;
  capped.max_programs = 2;
  CacheLookupOutcome outcome;
  const auto served = cache.GetOrSynthesize(IsomorphicA(), capped, &outcome);
  EXPECT_TRUE(outcome.hit);
  EXPECT_TRUE(outcome.subsumed);
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().subsumed_hits, 1);
  EXPECT_EQ(cache.size(), 1u);  // one entry serves both caps

  const auto fresh = core::SynthesizePrograms(IsomorphicA(), capped);
  ASSERT_EQ(served->programs.size(), fresh.programs.size());
  for (std::size_t i = 0; i < fresh.programs.size(); ++i) {
    EXPECT_EQ(served->programs[i], fresh.programs[i]);
  }
}

TEST(SynthesisCache, CompleteEntriesServeAnyCap) {
  // An entry that finished below its cap holds the whole solution set, so
  // even a *larger*-cap query is a hit.
  SynthesisCache cache;
  core::SynthesisOptions small_cap;
  small_cap.max_programs = 1 << 10;  // far above the real program count
  const auto first = cache.GetOrSynthesize(IsomorphicA(), small_cap);
  ASSERT_LT(static_cast<std::int64_t>(first->programs.size()),
            small_cap.max_programs);

  core::SynthesisOptions big_cap = small_cap;
  big_cap.max_programs = 1 << 20;
  CacheLookupOutcome outcome;
  const auto served = cache.GetOrSynthesize(IsomorphicA(), big_cap, &outcome);
  EXPECT_TRUE(outcome.hit);
  EXPECT_FALSE(outcome.subsumed);  // nothing was truncated
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(served.get(), first.get());
}

TEST(SynthesisCache, TruncatedEntriesAreUpgradedByLargerCapQueries) {
  SynthesisCache cache;
  core::SynthesisOptions tiny;
  tiny.max_programs = 1;  // truncated: programs.size() == cap
  const auto truncated = cache.GetOrSynthesize(IsomorphicA(), tiny);
  ASSERT_EQ(truncated->programs.size(), 1u);

  // A larger cap cannot be served by a truncated entry: it re-synthesizes
  // and the richer result replaces the entry...
  core::SynthesisOptions bigger = tiny;
  bigger.max_programs = 1 << 20;
  CacheLookupOutcome outcome;
  const auto full = cache.GetOrSynthesize(IsomorphicA(), bigger, &outcome);
  EXPECT_FALSE(outcome.hit);
  EXPECT_EQ(cache.stats().misses, 2);
  EXPECT_GT(full->programs.size(), 1u);
  EXPECT_EQ(cache.size(), 1u);

  // ...after which the original tiny cap is served by subsumption.
  const auto again = cache.GetOrSynthesize(IsomorphicA(), tiny, &outcome);
  EXPECT_TRUE(outcome.hit);
  EXPECT_TRUE(outcome.subsumed);
  EXPECT_EQ(again->programs.size(), 1u);
  EXPECT_EQ(again->programs[0], truncated->programs[0]);
}

TEST(SynthesisCache, SubsumptionWorksAcrossSnapshotPreloadRoundTrips) {
  // The persisted key embeds the cap the entry was synthesized under, so a
  // disk-warmed cache still serves smaller caps by truncation — as disk
  // hits.
  SynthesisCache cache;
  const core::SynthesisOptions unbounded;
  cache.GetOrSynthesize(IsomorphicA(), unbounded);

  SynthesisCache warmed;
  EXPECT_EQ(warmed.Preload(cache.Snapshot()), 1);
  core::SynthesisOptions capped = unbounded;
  capped.max_programs = 2;
  CacheLookupOutcome outcome;
  const auto served = warmed.GetOrSynthesize(IsomorphicA(), capped, &outcome);
  EXPECT_TRUE(outcome.hit);
  EXPECT_TRUE(outcome.from_disk);
  EXPECT_TRUE(outcome.subsumed);
  EXPECT_EQ(served->programs.size(), 2u);
  EXPECT_EQ(warmed.stats().disk_hits, 1);
  EXPECT_EQ(warmed.stats().misses, 0);
}

TEST(SynthesisCache, NonPositiveCapsAreServedAsEmptyPrefixes) {
  // A cap <= 0 means "no programs" to the synthesizer; through the cache it
  // must mean the same — an empty truncation of any existing entry, never a
  // negative iterator offset.
  SynthesisCache cache;
  const core::SynthesisOptions unbounded;
  cache.GetOrSynthesize(IsomorphicA(), unbounded);
  for (const std::int64_t cap : {std::int64_t{0}, std::int64_t{-1}}) {
    core::SynthesisOptions capped = unbounded;
    capped.max_programs = cap;
    CacheLookupOutcome outcome;
    const auto served = cache.GetOrSynthesize(IsomorphicA(), capped, &outcome);
    EXPECT_TRUE(outcome.hit) << cap;
    EXPECT_TRUE(served->programs.empty()) << cap;
    const auto fresh = core::SynthesizePrograms(IsomorphicA(), capped);
    EXPECT_TRUE(fresh.programs.empty()) << cap;
  }
  EXPECT_EQ(cache.stats().misses, 1);
}

TEST(SynthesisCache, PreloadWithoutACapMarkerIsConservative) {
  // A key not produced by Key() (foreign writer) carries no cap; the entry
  // is assumed to hold exactly its program count, so it serves caps up to
  // that count and re-synthesizes beyond it instead of claiming
  // completeness it cannot prove.
  SynthesisCache donor;
  const core::SynthesisOptions options;
  donor.GetOrSynthesize(IsomorphicA(), options);
  auto snapshot = donor.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  const std::size_t num_programs = snapshot[0].second.programs.size();
  // Strip the ";cap=..." suffix Key() appends.
  const auto marker = snapshot[0].first.rfind(";cap=");
  ASSERT_NE(marker, std::string::npos);
  snapshot[0].first.resize(marker);

  SynthesisCache warmed;
  EXPECT_EQ(warmed.Preload(std::move(snapshot)), 1);
  core::SynthesisOptions beyond = options;
  beyond.max_programs =
      static_cast<std::int64_t>(num_programs) + 1;  // beyond what it holds
  CacheLookupOutcome outcome;
  warmed.GetOrSynthesize(IsomorphicA(), beyond, &outcome);
  EXPECT_FALSE(outcome.hit);  // conservatively re-synthesized
  EXPECT_EQ(warmed.stats().misses, 1);
}

TEST(SynthesisCache, LruCapEvictsLeastRecentlyUsed) {
  SynthesisCache cache(/*max_entries=*/1);
  const core::SynthesisOptions options;
  cache.GetOrSynthesize(IsomorphicA(), options);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().evictions, 0);

  // A second signature overflows the cap: the first entry is evicted...
  cache.GetOrSynthesize(Different(), options);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().evictions, 1);

  // ...so revisiting it is a miss (re-synthesis), never a wrong result.
  CacheLookupOutcome outcome;
  const auto again = cache.GetOrSynthesize(IsomorphicA(), options, &outcome);
  EXPECT_FALSE(outcome.hit);
  EXPECT_EQ(cache.stats().misses, 3);
  EXPECT_EQ(cache.stats().evictions, 2);
  const auto fresh = core::SynthesizePrograms(IsomorphicA(), options);
  ASSERT_EQ(again->programs.size(), fresh.programs.size());
}

TEST(SynthesisCache, LruTouchOnHitProtectsHotEntries) {
  SynthesisCache cache(/*max_entries=*/2);
  const core::SynthesisOptions options;
  cache.GetOrSynthesize(IsomorphicA(), options);  // A is LRU after B lands
  cache.GetOrSynthesize(Different(), options);
  // Touch A: B becomes the least recently used...
  cache.GetOrSynthesize(IsomorphicB(), options);  // same signature as A
  EXPECT_EQ(cache.stats().hits, 1);

  // ...so a third signature evicts B, not A.
  core::SynthesisOptions other = options;
  other.max_program_size = options.max_program_size + 1;
  cache.GetOrSynthesize(IsomorphicA(), other);  // distinct base key
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1);
  CacheLookupOutcome outcome;
  cache.GetOrSynthesize(IsomorphicA(), options, &outcome);
  EXPECT_TRUE(outcome.hit) << "the hot entry must have survived";
}

TEST(SynthesisCache, UnboundedByDefault) {
  SynthesisCache cache;
  const core::SynthesisOptions options;
  cache.GetOrSynthesize(IsomorphicA(), options);
  cache.GetOrSynthesize(Different(), options);
  EXPECT_EQ(cache.max_entries(), 0);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 0);
}

TEST(SynthesisCache, PreloadRespectsTheLruCap) {
  SynthesisCache donor;
  const core::SynthesisOptions options;
  donor.GetOrSynthesize(IsomorphicA(), options);
  donor.GetOrSynthesize(Different(), options);

  SynthesisCache capped(/*max_entries=*/1);
  EXPECT_EQ(capped.Preload(donor.Snapshot()), 2);  // both inserted...
  EXPECT_EQ(capped.size(), 1u);                    // ...one evicted again
  EXPECT_EQ(capped.stats().evictions, 1);
}

// Cross-cluster sharing (ISSUE 5): two different machines whose placements
// pose the same synthesis problem — equal reduction-axis factorization over
// equally-deep hierarchies — hit one cache entry, and the hit is
// attributable as cross-tenant when the lookups carry distinct tenant tags.
TEST(SynthesisCache, TenantsWithACommonSubHierarchyShareOneEntry) {
  // A 4-node A100 cluster ([4 16]) and an 8-node V100 cluster ([8 8]): an
  // 8-wide reduction axis split as (2, 4) over nodes x GPUs is a valid
  // placement row on both, and the synthesis hierarchy only sees the
  // factorization — not the machine — so the signatures agree.
  const ParallelismMatrix on_a100({{2, 4}, {2, 4}});  // axes (8, 8) on [4 16]
  const ParallelismMatrix on_v100({{2, 4}, {4, 2}});  // axes (8, 8) on [8 8]
  const std::vector<int> raxes = {0};
  const auto sh_a100 = SynthesisHierarchy::Build(
      on_a100, raxes, SynthesisHierarchyKind::kReductionAxes);
  const auto sh_v100 = SynthesisHierarchy::Build(
      on_v100, raxes, SynthesisHierarchyKind::kReductionAxes);
  ASSERT_EQ(sh_a100.Signature(), sh_v100.Signature());

  SynthesisCache cache;
  const core::SynthesisOptions options;
  CacheLookupOutcome outcome;
  cache.GetOrSynthesize(sh_a100, options, &outcome, /*tenant=*/0);
  EXPECT_FALSE(outcome.hit);
  EXPECT_FALSE(outcome.cross_tenant);

  const auto served =
      cache.GetOrSynthesize(sh_v100, options, &outcome, /*tenant=*/1);
  EXPECT_TRUE(outcome.hit);
  EXPECT_TRUE(outcome.cross_tenant);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().cross_tenant_hits, 1);
  // The shared entry is exactly what the second tenant would have
  // synthesized itself.
  const auto fresh = core::SynthesizePrograms(sh_v100, options);
  ASSERT_EQ(served->programs.size(), fresh.programs.size());
  for (std::size_t i = 0; i < fresh.programs.size(); ++i) {
    EXPECT_EQ(served->programs[i], fresh.programs[i]);
  }

  // Same tenant re-reading its own entry is NOT cross-tenant...
  cache.GetOrSynthesize(sh_a100, options, &outcome, /*tenant=*/0);
  EXPECT_TRUE(outcome.hit);
  EXPECT_FALSE(outcome.cross_tenant);
  // ...and untagged lookups never are.
  cache.GetOrSynthesize(sh_a100, options, &outcome);
  EXPECT_TRUE(outcome.hit);
  EXPECT_FALSE(outcome.cross_tenant);
  EXPECT_EQ(cache.stats().cross_tenant_hits, 1);
}

TEST(SynthesisCache, DiskPreloadedEntriesAreNeverCrossTenant) {
  SynthesisCache donor;
  const core::SynthesisOptions options;
  donor.GetOrSynthesize(IsomorphicA(), options, nullptr, /*tenant=*/7);

  SynthesisCache warmed;
  warmed.Preload(donor.Snapshot());
  CacheLookupOutcome outcome;
  warmed.GetOrSynthesize(IsomorphicA(), options, &outcome, /*tenant=*/3);
  EXPECT_TRUE(outcome.hit);
  EXPECT_TRUE(outcome.from_disk);
  // Disk entries belong to no tenant: the cross-run reuse is the disk_hits
  // figure, not cross-tenant sharing.
  EXPECT_FALSE(outcome.cross_tenant);
}

// ISSUE 7 regression: the in-flight dedup must never park waiters behind a
// synthesis that died. The owner withdraws its announcement before waking
// them, so each waiter re-checks the table, finds neither entry nor flight,
// and synthesizes for itself — a dead owner costs a retry, never a hang.
TEST(SynthesisCache, DeadOwnerNeverParksItsWaitersForever) {
  SynthesisCache cache;
  const core::SynthesisOptions options;
  std::atomic<bool> owner_inside{false};
  std::atomic<bool> waiter_launched{false};
  std::atomic<int> synth_calls{0};
  FaultScope scope([&](std::string_view point) {
    if (point != "synth.layer") return;
    if (synth_calls.fetch_add(1) != 0) return;  // only the owner dies
    owner_inside.store(true);
    // Hold the flight open until the waiter is parked behind it, then die.
    for (int i = 0; i < 500 && !waiter_launched.load(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    throw std::runtime_error("injected owner death");
  });

  std::thread owner([&] {
    EXPECT_THROW(cache.GetOrSynthesize(IsomorphicA(), options),
                 std::runtime_error);
  });
  while (!owner_inside.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Same signature: the waiter parks behind the owner's in-flight record.
  std::shared_ptr<const core::SynthesisResult> served;
  std::thread waiter(
      [&] { served = cache.GetOrSynthesize(IsomorphicB(), options); });
  waiter_launched.store(true);
  owner.join();
  waiter.join();

  // The waiter re-dispatched: its own (second) synthesis succeeded and
  // published; the owner's death left no entry and no miss behind.
  ASSERT_NE(served, nullptr);
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(cache.size(), 1u);
  const auto fresh = core::SynthesizePrograms(IsomorphicB(), options);
  ASSERT_EQ(served->programs.size(), fresh.programs.size());
  for (std::size_t i = 0; i < fresh.programs.size(); ++i) {
    EXPECT_EQ(served->programs[i], fresh.programs[i]);
  }
}

// ISSUE 7: a *cancelled* waiter interrupts its wait instead of sitting out
// the owner's synthesis — and its departure (releasing the eviction
// reservation it held) leaves the flight fully intact for everyone else.
TEST(SynthesisCache, CancelledWaiterUnwindsWithoutDisturbingTheFlight) {
  SynthesisCache cache;
  const core::SynthesisOptions plain;
  std::atomic<bool> owner_inside{false};
  std::atomic<bool> release_owner{false};
  std::atomic<int> synth_calls{0};
  FaultScope scope([&](std::string_view point) {
    if (point != "synth.layer") return;
    if (synth_calls.fetch_add(1) != 0) return;  // only the owner stalls
    owner_inside.store(true);
    while (!release_owner.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::thread owner([&] { cache.GetOrSynthesize(IsomorphicA(), plain); });
  while (!owner_inside.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  CancelSource source;
  core::SynthesisOptions cancellable = plain;
  cancellable.cancel = source.token();
  std::thread waiter([&] {
    EXPECT_THROW(cache.GetOrSynthesize(IsomorphicB(), cancellable),
                 CancelledError);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));  // let it park
  source.Cancel();
  waiter.join();  // returns promptly: the polling wait observed the cancel
  release_owner.store(true);
  owner.join();

  // The owner finished normally and its entry serves later queries.
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(cache.size(), 1u);
  CacheLookupOutcome outcome;
  cache.GetOrSynthesize(IsomorphicB(), plain, &outcome);
  EXPECT_TRUE(outcome.hit);
}

// ISSUE 8 regression: the cancellable wait used to be a 5 ms poll loop, so
// a cancelled waiter sat out up to a full poll period (and the server's
// drain paid it per waiter). The wait is now a condition variable woken by
// the owner's completion and by the waiter's own CancelToken, so the
// cancel-to-wake latency is scheduler-bound — microseconds, not
// milliseconds. One trial measures that latency; the *median* of five
// trials must come in well under the old poll period. (The median is the
// discriminator: a reintroduced 5 ms poll wakes uniformly within (0, 5] ms,
// whose median is ~2.5 ms, while staying robust against a couple of
// scheduler hiccups inflating individual trials.)
double CancelWakeLatencyMsOnce() {
  SynthesisCache cache;
  const core::SynthesisOptions plain;
  std::atomic<bool> owner_inside{false};
  std::atomic<bool> release_owner{false};
  std::atomic<int> synth_calls{0};
  FaultScope scope([&](std::string_view point) {
    if (point != "synth.layer") return;
    if (synth_calls.fetch_add(1) != 0) return;  // only the owner stalls
    owner_inside.store(true);
    while (!release_owner.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::thread owner([&] { cache.GetOrSynthesize(IsomorphicA(), plain); });
  while (!owner_inside.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  CancelSource source;
  core::SynthesisOptions cancellable = plain;
  cancellable.cancel = source.token();
  std::chrono::steady_clock::time_point woke_at;
  std::thread waiter([&] {
    try {
      cache.GetOrSynthesize(IsomorphicB(), cancellable);
      ADD_FAILURE() << "waiter completed despite the cancel";
    } catch (const CancelledError&) {
    }
    woke_at = std::chrono::steady_clock::now();
  });
  // Let the waiter park behind the owner's flight before cancelling.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const auto cancelled_at = std::chrono::steady_clock::now();
  source.Cancel();
  waiter.join();
  release_owner.store(true);
  owner.join();
  return std::chrono::duration<double, std::milli>(woke_at - cancelled_at)
      .count();
}

TEST(SynthesisCache, CancelledWaiterWakesWellUnderTheOldPollPeriod) {
  std::vector<double> latencies_ms;
  for (int trial = 0; trial < 5; ++trial) {
    latencies_ms.push_back(CancelWakeLatencyMsOnce());
  }
  std::sort(latencies_ms.begin(), latencies_ms.end());
  const double median_ms = latencies_ms[latencies_ms.size() / 2];
  EXPECT_LT(median_ms, 2.0) << "cancel-to-wake median " << median_ms
                            << " ms — the cv wake-up has regressed toward "
                               "the old 5 ms poll";
}

// ISSUE 9: the non-blocking lookup surface. TryLookup never parks — it
// either serves (kReady), claims ownership (kOwned), or registers a
// continuation against the owner's flight (kInFlight) and returns.
TEST(SynthesisCache, TryLookupServesClaimsAndDefers) {
  SynthesisCache cache;
  const core::SynthesisOptions options;

  // Fresh signature: the caller becomes the owner...
  SynthesisCache::DeferredLookup owner_handle;
  auto owned = cache.TryLookup(IsomorphicA(), options, [] {}, &owner_handle);
  ASSERT_EQ(owned.state, SynthesisCache::TryLookupState::kOwned);
  EXPECT_FALSE(owner_handle.active());

  // ...and while its flight is open, another lookup on an isomorphic
  // hierarchy defers: continuation registered, no park, no result yet.
  std::atomic<bool> fired{false};
  SynthesisCache::DeferredLookup deferred;
  const auto in_flight = cache.TryLookup(
      IsomorphicB(), options, [&] { fired.store(true); }, &deferred);
  ASSERT_EQ(in_flight.state, SynthesisCache::TryLookupState::kInFlight);
  EXPECT_EQ(in_flight.result, nullptr);
  EXPECT_TRUE(deferred.active());
  EXPECT_FALSE(fired.load());
  EXPECT_EQ(cache.stats().deferred_lookups, 1);

  // Owner completion publishes and fires the continuation synchronously.
  auto result = std::make_shared<const core::SynthesisResult>(
      core::SynthesizePrograms(IsomorphicA(), options));
  cache.CompleteOwned(IsomorphicA(), options, result);
  EXPECT_TRUE(fired.load());
  EXPECT_EQ(cache.stats().continuations_fired, 1);
  EXPECT_EQ(cache.stats().misses, 1);

  // The deferred caller retries: a plain hit now (and the retry releases
  // the eviction reservation its handle held).
  CacheLookupOutcome outcome;
  const auto retried = cache.TryLookup(IsomorphicB(), options, [] {},
                                       &deferred, &outcome);
  ASSERT_EQ(retried.state, SynthesisCache::TryLookupState::kReady);
  EXPECT_FALSE(deferred.active());
  EXPECT_TRUE(outcome.hit);
  EXPECT_EQ(retried.result.get(), result.get());
  EXPECT_EQ(cache.stats().hits, 1);
  // Nothing in the non-blocking protocol ever parked.
  EXPECT_EQ(cache.stats().waiter_parks, 0);
  EXPECT_EQ(cache.stats().dedup_waits, 0);
}

TEST(SynthesisCache, OwnerDeathFiresContinuationsAndHandsOffOwnership) {
  SynthesisCache cache;
  const core::SynthesisOptions options;

  SynthesisCache::DeferredLookup owner_handle;
  auto owned = cache.TryLookup(IsomorphicA(), options, [] {}, &owner_handle);
  ASSERT_EQ(owned.state, SynthesisCache::TryLookupState::kOwned);

  std::atomic<bool> fired{false};
  SynthesisCache::DeferredLookup deferred;
  const auto in_flight = cache.TryLookup(
      IsomorphicB(), options, [&] { fired.store(true); }, &deferred);
  ASSERT_EQ(in_flight.state, SynthesisCache::TryLookupState::kInFlight);

  // The owner's synthesis died: the flight dissolves, continuations fire,
  // and the deferred caller's retry finds no entry and no flight — it
  // becomes the new owner and synthesizes for itself.
  cache.AbandonOwned(IsomorphicA(), options);
  EXPECT_TRUE(fired.load());
  EXPECT_EQ(cache.stats().continuations_fired, 1);

  const auto retried =
      cache.TryLookup(IsomorphicB(), options, [] {}, &deferred);
  ASSERT_EQ(retried.state, SynthesisCache::TryLookupState::kOwned);
  auto result = std::make_shared<const core::SynthesisResult>(
      core::SynthesizePrograms(IsomorphicB(), options));
  cache.CompleteOwned(IsomorphicB(), options, result);
  EXPECT_EQ(cache.stats().misses, 1);  // the dead owner's claim counted none
  EXPECT_EQ(cache.size(), 1u);

  CacheLookupOutcome outcome;
  cache.GetOrSynthesize(IsomorphicA(), options, &outcome);
  EXPECT_TRUE(outcome.hit);
}

// ISSUE 9 satellite: a deferred waiter holds the same eviction reservation a
// parked waiter would, and CancelDeferred must release it exactly like the
// cancelled-parked-waiter path above — no leaked reservation pinning the
// base in a capped cache forever.
TEST(SynthesisCache, CancelDeferredReleasesTheEvictionReservation) {
  SynthesisCache cache(/*max_entries=*/1);
  const core::SynthesisOptions plain;
  std::atomic<bool> owner_inside{false};
  std::atomic<bool> release_owner{false};
  std::atomic<int> synth_calls{0};
  FaultScope scope([&](std::string_view point) {
    if (point != "synth.layer") return;
    if (synth_calls.fetch_add(1) != 0) return;  // only the owner stalls
    owner_inside.store(true);
    while (!release_owner.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::thread owner([&] { cache.GetOrSynthesize(IsomorphicA(), plain); });
  while (!owner_inside.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::atomic<bool> fired{false};
  SynthesisCache::DeferredLookup deferred;
  const auto in_flight = cache.TryLookup(
      IsomorphicB(), plain, [&] { fired.store(true); }, &deferred);
  ASSERT_EQ(in_flight.state, SynthesisCache::TryLookupState::kInFlight);
  EXPECT_TRUE(deferred.active());

  // Departure before the owner resolves: reservation released, continuation
  // deregistered — the owner's later completion must fire nothing.
  cache.CancelDeferred(&deferred);
  EXPECT_FALSE(deferred.active());
  release_owner.store(true);
  owner.join();
  EXPECT_FALSE(fired.load());
  EXPECT_EQ(cache.stats().continuations_fired, 0);

  // With the reservation gone, the published entry is evictable again: a
  // second signature displaces it instead of overflowing the cap.
  cache.GetOrSynthesize(Different(), plain);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().evictions, 1);
}

// The blocking path still accounts its parks — the counter the deferral
// scheduler's tests pin to zero has to be live on the legacy path.
TEST(SynthesisCache, ParkedWaiterCountsWaiterParks) {
  SynthesisCache cache;
  const core::SynthesisOptions plain;
  std::atomic<bool> owner_inside{false};
  std::atomic<bool> release_owner{false};
  std::atomic<bool> waiter_parked{false};
  std::atomic<int> synth_calls{0};
  FaultScope scope([&](std::string_view point) {
    if (point != "synth.layer") return;
    if (synth_calls.fetch_add(1) != 0) return;  // only the owner stalls
    owner_inside.store(true);
    while (!release_owner.load()) {
      if (waiter_parked.load() && cache.stats().waiter_parks > 0) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::thread owner([&] { cache.GetOrSynthesize(IsomorphicA(), plain); });
  while (!owner_inside.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::thread waiter([&] {
    waiter_parked.store(true);
    cache.GetOrSynthesize(IsomorphicB(), plain);
  });
  waiter.join();
  release_owner.store(true);
  owner.join();
  EXPECT_EQ(cache.stats().waiter_parks, 1);
  EXPECT_EQ(cache.stats().dedup_waits, 1);
  EXPECT_EQ(cache.stats().deferred_lookups, 0);
}

TEST(SynthesisCache, ClearResetsEverything) {
  SynthesisCache cache;
  const core::SynthesisOptions options;
  cache.GetOrSynthesize(IsomorphicA(), options);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().misses, 0);
  cache.GetOrSynthesize(IsomorphicA(), options);
  EXPECT_EQ(cache.stats().misses, 1);
}

}  // namespace
}  // namespace p2::engine
