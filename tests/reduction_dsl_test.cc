#include "core/reduction_dsl.h"

#include <gtest/gtest.h>

#include "core/collective.h"

namespace p2::core {
namespace {

TEST(Form, Factories) {
  EXPECT_EQ(Form::InsideGroup().kind, Form::Kind::kInsideGroup);
  EXPECT_EQ(Form::InsideGroup().ancestor_level, -1);
  EXPECT_EQ(Form::Parallel(2).kind, Form::Kind::kParallel);
  EXPECT_EQ(Form::Parallel(2).ancestor_level, 2);
  EXPECT_EQ(Form::Master(0).kind, Form::Kind::kMaster);
}

TEST(Form, Equality) {
  EXPECT_EQ(Form::Parallel(1), Form::Parallel(1));
  EXPECT_NE(Form::Parallel(1), Form::Parallel(2));
  EXPECT_NE(Form::Parallel(1), Form::Master(1));
  EXPECT_EQ(Form::InsideGroup(), Form::InsideGroup());
}

TEST(Instruction, Equality) {
  const Instruction a{2, Form::Parallel(0), Collective::kAllReduce};
  const Instruction b{2, Form::Parallel(0), Collective::kAllReduce};
  const Instruction c{2, Form::Parallel(0), Collective::kReduce};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(ToString, DefaultLevelNames) {
  const Instruction i{2, Form::Parallel(0), Collective::kAllReduce};
  EXPECT_EQ(ToString(i), "AllReduce(slice=L2, Parallel(L0))");
}

TEST(ToString, CustomLevelNames) {
  const std::vector<std::string> names = {"rack", "server", "cpu", "gpu"};
  const Instruction i{2, Form::Master(0), Collective::kReduce};
  EXPECT_EQ(ToString(i, names), "Reduce(slice=cpu, Master(rack))");
}

TEST(ToString, InsideGroup) {
  const std::vector<std::string> names = {"root", "node", "gpu"};
  const Instruction i{1, Form::InsideGroup(), Collective::kReduceScatter};
  EXPECT_EQ(ToString(i, names), "ReduceScatter(slice=node, InsideGroup)");
}

TEST(ToString, ProgramJoinsWithSemicolons) {
  const Program p = {
      Instruction{1, Form::InsideGroup(), Collective::kReduceScatter},
      Instruction{1, Form::Parallel(0), Collective::kAllReduce},
      Instruction{1, Form::InsideGroup(), Collective::kAllGather}};
  const std::string s = ToString(p);
  EXPECT_EQ(s,
            "ReduceScatter(slice=L1, InsideGroup); "
            "AllReduce(slice=L1, Parallel(L0)); "
            "AllGather(slice=L1, InsideGroup)");
}

TEST(ToString, EmptyProgram) {
  EXPECT_EQ(ToString(Program{}), "");
}

TEST(Collective, Names) {
  EXPECT_STREQ(ToString(Collective::kAllReduce), "AllReduce");
  EXPECT_STREQ(ToString(Collective::kReduceScatter), "ReduceScatter");
  EXPECT_STREQ(ToString(Collective::kAllGather), "AllGather");
  EXPECT_STREQ(ToString(Collective::kReduce), "Reduce");
  EXPECT_STREQ(ToString(Collective::kBroadcast), "Broadcast");
}

TEST(Collective, ShortNames) {
  EXPECT_STREQ(ShortName(Collective::kAllReduce), "AR");
  EXPECT_STREQ(ShortName(Collective::kReduceScatter), "RS");
  EXPECT_STREQ(ShortName(Collective::kAllGather), "AG");
  EXPECT_STREQ(ShortName(Collective::kReduce), "RD");
  EXPECT_STREQ(ShortName(Collective::kBroadcast), "BC");
}

TEST(Collective, AlgoNames) {
  EXPECT_STREQ(ToString(NcclAlgo::kRing), "Ring");
  EXPECT_STREQ(ToString(NcclAlgo::kTree), "Tree");
  EXPECT_EQ(kAllAlgos.size(), 2u);
  EXPECT_EQ(kAllCollectives.size(), 5u);
}

}  // namespace
}  // namespace p2::core
