#include "engine/json_export.h"

#include <gtest/gtest.h>

#include <limits>

#include "engine/service.h"
#include "topology/presets.h"

namespace p2::engine {
namespace {

TEST(JsonEscape, EscapesSpecials) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(JsonExport, PlacementEvaluationRoundTripsKeyFields) {
  EngineOptions opts;
  opts.payload_bytes = 1e8;
  const Engine eng(topology::MakeA100Cluster(2), opts);
  const core::ParallelismMatrix m({{2, 4}, {1, 4}});
  const std::vector<int> axes = {0};
  const auto eval = eng.EvaluatePlacement(m, axes);
  const std::string json = ToJson(eval);
  EXPECT_NE(json.find("\"matrix\":\"[[2 4] [1 4]]\""), std::string::npos);
  EXPECT_NE(json.find("\"programs\":["), std::string::npos);
  EXPECT_NE(json.find("\"default_allreduce\":true"), std::string::npos);
  EXPECT_NE(json.find("\"measured\":true"), std::string::npos);
  EXPECT_NE(json.find("\"shape\":\"AR\""), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check).
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
}

TEST(JsonExport, ExperimentResultIncludesConfig) {
  EngineOptions opts;
  opts.payload_bytes = 1e8;
  opts.algo = core::NcclAlgo::kTree;
  const Engine eng(topology::MakeA100Cluster(2), opts);
  const std::vector<std::int64_t> axes = {8, 4};
  const std::vector<int> raxes = {0};
  const auto result = eng.RunExperiment(axes, raxes);
  const std::string json = ToJson(result);
  EXPECT_NE(json.find("\"axes\":[8,4]"), std::string::npos);
  EXPECT_NE(json.find("\"reduction_axes\":[0]"), std::string::npos);
  EXPECT_NE(json.find("\"algo\":\"Tree\""), std::string::npos);
  EXPECT_NE(json.find("\"placements\":["), std::string::npos);
}

TEST(JsonExport, PipelineStatsCarryTheDashboardFields) {
  // The ROADMAP's cost-model-fidelity item: unique hierarchies, seconds
  // saved, disk hits — plus the ISSUE 5 cross-tenant and early-stopping
  // counters — all flow to the dashboards through the experiment JSON.
  EngineOptions opts;
  opts.payload_bytes = 1e8;
  const Engine eng(topology::MakeA100Cluster(2), opts);
  const std::vector<std::int64_t> axes = {8, 2, 2};
  const std::vector<int> raxes = {0};
  const std::string json = ToJson(eng.RunExperiment(axes, raxes));
  for (const char* field :
       {"\"unique_hierarchies\":", "\"cache_hits\":", "\"cache_misses\":",
        "\"cache_cross_tenant_hits\":", "\"cache_disk_hits\":",
        "\"guided_skipped\":", "\"synthesis_seconds_saved\":",
        "\"synthesis_seconds\":", "\"evaluation_seconds\":",
        "\"total_seconds\":", "\"disk_seconds_saved\":"}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }
}

TEST(JsonExport, ServiceStatsExportPerTenantSectionsAndTotals) {
  EngineOptions opts;
  opts.payload_bytes = 1e8;
  PlannerServiceOptions service_options;
  service_options.engine = opts;
  PlannerService service(service_options);

  PlanRequest first;
  first.axes = {8, 4};
  first.reduction_axes = {0};
  first.cluster = topology::MakeA100Cluster(2);
  PlanRequest second = first;
  second.cluster = topology::MakeV100Cluster(4);
  service.Plan(std::move(first));
  service.Plan(std::move(second));

  const auto stats = service.stats();
  ASSERT_EQ(stats.tenants.size(), 2u);
  const std::string json = ToJson(stats);
  // Service-wide totals...
  EXPECT_NE(json.find("\"requests\":2"), std::string::npos);
  EXPECT_NE(json.find("\"engines_constructed\":2"), std::string::npos);
  EXPECT_NE(json.find("\"cross_tenant_hits\":"), std::string::npos);
  EXPECT_NE(json.find("\"evictions\":"), std::string::npos);
  // ...plus one tenant object per registered engine, carrying its
  // fingerprint and its share of the cache activity.
  EXPECT_NE(json.find("\"tenants\":[{"), std::string::npos);
  EXPECT_NE(json.find("\"id\":0"), std::string::npos);
  EXPECT_NE(json.find("\"id\":1"), std::string::npos);
  EXPECT_NE(
      json.find("\"fingerprint\":\"" +
                JsonEscape(topology::MakeA100Cluster(2).Fingerprint()) + "\""),
      std::string::npos);
  EXPECT_NE(
      json.find("\"fingerprint\":\"" +
                JsonEscape(topology::MakeV100Cluster(4).Fingerprint()) + "\""),
      std::string::npos);
  EXPECT_NE(json.find("\"cache_cross_tenant_hits\":"), std::string::npos);

  // Cheap well-formedness: balanced braces/brackets outside strings.
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
}

TEST(JsonExport, ServiceStatsExportRobustnessCounters) {
  // The ISSUE 7 abort taxonomy flows to dashboards: hand-built stats so the
  // exact values are assertable, service-wide and per tenant.
  PlannerServiceStats stats;
  stats.requests = 7;
  stats.rejected = 2;
  stats.cancelled = 3;
  stats.deadline_exceeded = 1;
  stats.peak_in_flight = 5;
  TenantStats tenant;
  tenant.id = 0;
  tenant.rejected = 2;
  tenant.cancelled = 3;
  tenant.deadline_exceeded = 1;
  tenant.peak_in_flight = 4;
  stats.tenants = {tenant};

  const std::string json = ToJson(stats);
  EXPECT_NE(json.find("\"rejected\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"cancelled\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"deadline_exceeded\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"peak_in_flight\":5"), std::string::npos) << json;
  // The tenant object carries its own copies.
  const auto tenants = json.find("\"tenants\":[{");
  ASSERT_NE(tenants, std::string::npos);
  EXPECT_NE(json.find("\"rejected\":2", tenants), std::string::npos);
  EXPECT_NE(json.find("\"cancelled\":3", tenants), std::string::npos);
  EXPECT_NE(json.find("\"deadline_exceeded\":1", tenants), std::string::npos);
  EXPECT_NE(json.find("\"peak_in_flight\":4", tenants), std::string::npos);
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
}

TEST(JsonExport, NonFiniteNumbersBecomeNullNeverBareTokens) {
  // ISSUE 8 regression: %.9g renders NaN/inf as bare `nan`/`inf`, which no
  // JSON parser accepts — one poisoned timing field used to invalidate a
  // whole stats document. Non-finite values now serialize as `null`.
  PlannerServiceStats stats;
  stats.requests = 1;
  stats.cache.seconds_saved = std::numeric_limits<double>::quiet_NaN();
  TenantStats tenant;
  tenant.synthesis_seconds_saved = std::numeric_limits<double>::infinity();
  stats.tenants = {tenant};

  const std::string json = ToJson(stats);
  EXPECT_NE(json.find("\"seconds_saved\":null"), std::string::npos) << json;
  EXPECT_NE(json.find("\"synthesis_seconds_saved\":null"), std::string::npos)
      << json;
  for (const char* token : {":nan", ":inf", ":-inf", ":-nan"}) {
    EXPECT_EQ(json.find(token), std::string::npos) << token << " in " << json;
  }
  // The document as a whole stays well-formed.
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
}

TEST(JsonExport, ServiceStatsExportSaveErrorCounters) {
  // The drain-time save failure an operator can only see through stats
  // (ISSUE 8): the counter and the escaped detail string both export.
  PlannerServiceStats stats;
  stats.save_errors = 2;
  stats.last_save_error = "write p2.cache: \"disk\" died";
  const std::string json = ToJson(stats);
  EXPECT_NE(json.find("\"save_errors\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"last_save_error\":\"write p2.cache: \\\"disk\\\" "
                      "died\""),
            std::string::npos)
      << json;
}

}  // namespace
}  // namespace p2::engine
