#include "engine/json_export.h"

#include <gtest/gtest.h>

#include "topology/presets.h"

namespace p2::engine {
namespace {

TEST(JsonEscape, EscapesSpecials) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(JsonExport, PlacementEvaluationRoundTripsKeyFields) {
  EngineOptions opts;
  opts.payload_bytes = 1e8;
  const Engine eng(topology::MakeA100Cluster(2), opts);
  const core::ParallelismMatrix m({{2, 4}, {1, 4}});
  const std::vector<int> axes = {0};
  const auto eval = eng.EvaluatePlacement(m, axes);
  const std::string json = ToJson(eval);
  EXPECT_NE(json.find("\"matrix\":\"[[2 4] [1 4]]\""), std::string::npos);
  EXPECT_NE(json.find("\"programs\":["), std::string::npos);
  EXPECT_NE(json.find("\"default_allreduce\":true"), std::string::npos);
  EXPECT_NE(json.find("\"measured\":true"), std::string::npos);
  EXPECT_NE(json.find("\"shape\":\"AR\""), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check).
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
}

TEST(JsonExport, ExperimentResultIncludesConfig) {
  EngineOptions opts;
  opts.payload_bytes = 1e8;
  opts.algo = core::NcclAlgo::kTree;
  const Engine eng(topology::MakeA100Cluster(2), opts);
  const std::vector<std::int64_t> axes = {8, 4};
  const std::vector<int> raxes = {0};
  const auto result = eng.RunExperiment(axes, raxes);
  const std::string json = ToJson(result);
  EXPECT_NE(json.find("\"axes\":[8,4]"), std::string::npos);
  EXPECT_NE(json.find("\"reduction_axes\":[0]"), std::string::npos);
  EXPECT_NE(json.find("\"algo\":\"Tree\""), std::string::npos);
  EXPECT_NE(json.find("\"placements\":["), std::string::npos);
}

}  // namespace
}  // namespace p2::engine
