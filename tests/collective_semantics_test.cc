// Tests the Hoare-triple semantics of Figure 8, including the paper's
// worked examples and the two semantically invalid programs of Figure 4.
#include "core/collective_semantics.h"

#include <gtest/gtest.h>

#include "core/device_state.h"

namespace p2::core {
namespace {

std::vector<std::int64_t> G(std::initializer_list<std::int64_t> ds) {
  return ds;
}

TEST(AllReduce, PairFromInitial) {
  auto ctx = MakeInitialContext(4);
  const auto r =
      ApplyCollectiveToGroup(Collective::kAllReduce, ctx, G({0, 1}));
  ASSERT_TRUE(r.ok()) << ToString(r.error);
  // Both devices now hold columns {0,1} in every row.
  for (int d : {0, 1}) {
    for (int row = 0; row < 4; ++row) {
      EXPECT_TRUE(ctx[static_cast<std::size_t>(d)].Get(row, 0));
      EXPECT_TRUE(ctx[static_cast<std::size_t>(d)].Get(row, 1));
      EXPECT_FALSE(ctx[static_cast<std::size_t>(d)].Get(row, 2));
    }
  }
  // Devices 2,3 untouched.
  EXPECT_EQ(ctx[2], DeviceState::Initial(4, 2));
}

TEST(AllReduce, RejectsDoubleReduction) {
  // Fig 4b flavor: after reducing {0,1}, reducing {0,1} again reduces the
  // same data twice.
  auto ctx = MakeInitialContext(4);
  ASSERT_TRUE(
      ApplyCollectiveToGroup(Collective::kAllReduce, ctx, G({0, 1})).ok());
  const auto r =
      ApplyCollectiveToGroup(Collective::kAllReduce, ctx, G({0, 1}));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error, SemanticsError::kChunksOverlap);
}

TEST(AllReduce, RejectsPartialOverlap) {
  // {0,1} reduced, then {1,2}: device 1 and 2 share no columns... they are
  // disjoint, but their row sets must also match; they do (all rows), and
  // chunks are disjoint, so {1,2} is fine. The invalid case is {0,1} again
  // or {0,1,2} where 0 and 1 overlap.
  auto ctx = MakeInitialContext(4);
  ASSERT_TRUE(
      ApplyCollectiveToGroup(Collective::kAllReduce, ctx, G({0, 1})).ok());
  const auto r =
      ApplyCollectiveToGroup(Collective::kAllReduce, ctx, G({0, 1, 2}));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error, SemanticsError::kChunksOverlap);
}

TEST(AllReduce, RejectsMismatchedRows) {
  auto ctx = MakeInitialContext(4);
  // ReduceScatter {0,1} leaves devices 0 and 1 with different rows.
  ASSERT_TRUE(
      ApplyCollectiveToGroup(Collective::kReduceScatter, ctx, G({0, 1})).ok());
  const auto r =
      ApplyCollectiveToGroup(Collective::kAllReduce, ctx, G({0, 1}));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error, SemanticsError::kRowSetsDiffer);
}

TEST(AllReduce, RejectsSingleton) {
  auto ctx = MakeInitialContext(4);
  const auto r = ApplyCollectiveToGroup(Collective::kAllReduce, ctx, G({0}));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error, SemanticsError::kGroupTooSmall);
}

TEST(AllReduce, RejectsEmptyStates) {
  auto ctx = MakeInitialContext(4);
  // Reduce clears non-roots; AllReduce over two cleared devices is a no-op.
  ASSERT_TRUE(
      ApplyCollectiveToGroup(Collective::kReduce, ctx, G({0, 1})).ok());
  ASSERT_TRUE(
      ApplyCollectiveToGroup(Collective::kReduce, ctx, G({2, 3})).ok());
  const auto r =
      ApplyCollectiveToGroup(Collective::kAllReduce, ctx, G({1, 3}));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error, SemanticsError::kEmptyRows);
}

TEST(ReduceScatter, SplitsRowsInOrder) {
  auto ctx = MakeInitialContext(4);
  const auto r =
      ApplyCollectiveToGroup(Collective::kReduceScatter, ctx, G({0, 1}));
  ASSERT_TRUE(r.ok());
  // Device 0 keeps rows {0,1}, device 1 rows {2,3}; both with columns {0,1}.
  EXPECT_EQ(ctx[0].NonEmptyRows(), (std::vector<int>{0, 1}));
  EXPECT_EQ(ctx[1].NonEmptyRows(), (std::vector<int>{2, 3}));
  EXPECT_TRUE(ctx[0].Get(0, 0));
  EXPECT_TRUE(ctx[0].Get(0, 1));
  EXPECT_TRUE(ctx[1].Get(2, 0));
  EXPECT_TRUE(ctx[1].Get(2, 1));
}

TEST(ReduceScatter, Fig4aInvalidSecondStep) {
  // Fig 4a: ReduceScatter over {A0,A1} = {0,1}, then AllReduce over {0,1}
  // would reduce the first and second half of the result together.
  auto ctx = MakeInitialContext(4);
  ASSERT_TRUE(
      ApplyCollectiveToGroup(Collective::kReduceScatter, ctx, G({0, 1})).ok());
  const auto r =
      ApplyCollectiveToGroup(Collective::kAllReduce, ctx, G({0, 1}));
  EXPECT_FALSE(r.ok());
}

TEST(ReduceScatter, RejectsIndivisibleRows) {
  auto ctx = MakeInitialContext(4);
  const auto r =
      ApplyCollectiveToGroup(Collective::kReduceScatter, ctx, G({0, 1, 2}));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error, SemanticsError::kNotDivisible);
}

TEST(AllGather, GathersScatteredRows) {
  auto ctx = MakeInitialContext(4);
  ASSERT_TRUE(
      ApplyCollectiveToGroup(Collective::kReduceScatter, ctx, G({0, 1})).ok());
  const auto r = ApplyCollectiveToGroup(Collective::kAllGather, ctx, G({0, 1}));
  ASSERT_TRUE(r.ok());
  for (int d : {0, 1}) {
    EXPECT_EQ(ctx[static_cast<std::size_t>(d)].NumNonEmptyRows(), 4);
    EXPECT_TRUE(ctx[static_cast<std::size_t>(d)].Get(0, 0));
    EXPECT_TRUE(ctx[static_cast<std::size_t>(d)].Get(0, 1));
  }
  EXPECT_EQ(ctx[0], ctx[1]);
}

TEST(AllGather, RejectsOverlappingRowSets) {
  auto ctx = MakeInitialContext(4);
  // Initially every device has all rows; row sets overlap completely.
  const auto r = ApplyCollectiveToGroup(Collective::kAllGather, ctx, G({0, 1}));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error, SemanticsError::kRowSetsOverlap);
}

TEST(AllGather, RejectsDifferentRowCounts) {
  auto ctx = MakeInitialContext(8);
  // Scatter {0,1} over 2 (4 rows each) and {2,3,4,5} over 4 (2 rows each).
  ASSERT_TRUE(
      ApplyCollectiveToGroup(Collective::kReduceScatter, ctx, G({0, 1})).ok());
  ASSERT_TRUE(
      ApplyCollectiveToGroup(Collective::kReduceScatter, ctx, G({2, 3, 4, 5}))
          .ok());
  const auto r = ApplyCollectiveToGroup(Collective::kAllGather, ctx, G({0, 2}));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error, SemanticsError::kRowCountsDiffer);
}

TEST(Reduce, PutsResultOnRootAndClearsOthers) {
  auto ctx = MakeInitialContext(4);
  const auto r = ApplyCollectiveToGroup(Collective::kReduce, ctx, G({1, 2}));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(ctx[1].NumNonEmptyRows(), 4);
  EXPECT_TRUE(ctx[1].Get(0, 1));
  EXPECT_TRUE(ctx[1].Get(0, 2));
  EXPECT_TRUE(ctx[2].IsEmpty());
}

TEST(Broadcast, OverridesFromRoot) {
  auto ctx = MakeInitialContext(4);
  ASSERT_TRUE(ApplyCollectiveToGroup(Collective::kReduce, ctx, G({0, 1})).ok());
  const auto r = ApplyCollectiveToGroup(Collective::kBroadcast, ctx, G({0, 1}));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(ctx[0], ctx[1]);
  EXPECT_TRUE(ctx[1].Get(0, 0));
  EXPECT_TRUE(ctx[1].Get(0, 1));
}

TEST(Broadcast, RequiresSubset) {
  auto ctx = MakeInitialContext(4);
  // Device 1 holds its own column, which is not a subset of device 0's.
  const auto r = ApplyCollectiveToGroup(Collective::kBroadcast, ctx, G({0, 1}));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error, SemanticsError::kBroadcastNotSubset);
}

TEST(Broadcast, RequiresInformationGain) {
  auto ctx = MakeInitialContext(4);
  ASSERT_TRUE(
      ApplyCollectiveToGroup(Collective::kAllReduce, ctx, G({0, 1})).ok());
  // Both devices already share the root's state: no gain.
  const auto r = ApplyCollectiveToGroup(Collective::kBroadcast, ctx, G({0, 1}));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error, SemanticsError::kBroadcastNoGain);
}

TEST(Groups, AllMustSucceedAtomically) {
  auto ctx = MakeInitialContext(4);
  // Make {2,3} un-reducible by scattering them first.
  ASSERT_TRUE(
      ApplyCollectiveToGroup(Collective::kReduceScatter, ctx, G({2, 3})).ok());
  const StateContext before = ctx;
  const std::vector<std::vector<std::int64_t>> groups = {{0, 1}, {2, 3}};
  const auto r = ApplyCollectiveToGroups(Collective::kAllReduce, ctx, groups);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(ctx, before);  // no partial application
}

TEST(Groups, SimultaneousDisjointGroups) {
  auto ctx = MakeInitialContext(4);
  const std::vector<std::vector<std::int64_t>> groups = {{0, 1}, {2, 3}};
  const auto r = ApplyCollectiveToGroups(Collective::kAllReduce, ctx, groups);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(ctx[0].Get(0, 1));
  EXPECT_TRUE(ctx[2].Get(0, 3));
  EXPECT_FALSE(ctx[0].Get(0, 2));
}

// End-to-end contexts of the two canonical programs (paper Fig. 3b / 3c) on
// a 2x2 synthesis hierarchy: devices {0,1} local pairs, {0,2},{1,3} remote.
TEST(Programs, AllReduceThenAllReduceReachesFullReduction) {
  auto ctx = MakeInitialContext(4);
  const std::vector<std::vector<std::int64_t>> local = {{0, 1}, {2, 3}};
  const std::vector<std::vector<std::int64_t>> remote = {{0, 2}, {1, 3}};
  ASSERT_TRUE(ApplyCollectiveToGroups(Collective::kAllReduce, ctx, local).ok());
  ASSERT_TRUE(
      ApplyCollectiveToGroups(Collective::kAllReduce, ctx, remote).ok());
  const std::vector<std::vector<std::int64_t>> all = {{0, 1, 2, 3}};
  EXPECT_EQ(ctx, MakeGoalContext(4, all));
}

TEST(Programs, ReduceAllReduceBroadcast) {
  auto ctx = MakeInitialContext(4);
  const std::vector<std::vector<std::int64_t>> local = {{0, 1}, {2, 3}};
  const std::vector<std::vector<std::int64_t>> masters = {{0, 2}};
  ASSERT_TRUE(ApplyCollectiveToGroups(Collective::kReduce, ctx, local).ok());
  ASSERT_TRUE(
      ApplyCollectiveToGroups(Collective::kAllReduce, ctx, masters).ok());
  ASSERT_TRUE(ApplyCollectiveToGroups(Collective::kBroadcast, ctx, local).ok());
  const std::vector<std::vector<std::int64_t>> all = {{0, 1, 2, 3}};
  EXPECT_EQ(ctx, MakeGoalContext(4, all));
}

TEST(Programs, ReduceScatterAllReduceAllGather) {
  auto ctx = MakeInitialContext(4);
  const std::vector<std::vector<std::int64_t>> local = {{0, 1}, {2, 3}};
  const std::vector<std::vector<std::int64_t>> remote = {{0, 2}, {1, 3}};
  ASSERT_TRUE(
      ApplyCollectiveToGroups(Collective::kReduceScatter, ctx, local).ok());
  ASSERT_TRUE(
      ApplyCollectiveToGroups(Collective::kAllReduce, ctx, remote).ok());
  ASSERT_TRUE(
      ApplyCollectiveToGroups(Collective::kAllGather, ctx, local).ok());
  const std::vector<std::vector<std::int64_t>> all = {{0, 1, 2, 3}};
  EXPECT_EQ(ctx, MakeGoalContext(4, all));
}

TEST(SemanticsError, Strings) {
  EXPECT_STREQ(ToString(SemanticsError::kNone), "ok");
  EXPECT_NE(std::string(ToString(SemanticsError::kChunksOverlap)).find("twice"),
            std::string::npos);
}

}  // namespace
}  // namespace p2::core
